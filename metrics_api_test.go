package fpm

// Tests for the public observability surface: fpm.WithMetrics must return
// the same itemsets as plain mining for every supported algorithm, with a
// populated, JSON-round-trippable Snapshot; sequential and parallel runs
// must agree on the kernel-level counters they can both observe.

import (
	"encoding/json"
	"reflect"
	"testing"
)

func resultMap(sets []Itemset) ResultSet {
	rs := ResultSet{}
	for _, s := range sets {
		rs.Collect(s.Items, s.Support)
	}
	return rs
}

func TestWithMetricsMatchesPlainMine(t *testing.T) {
	db := testDB()
	minsup := 20
	want, err := Mine(db, LCM, 0, minsup)
	if err != nil {
		t.Fatal(err)
	}
	wantRS := resultMap(want)

	for _, algo := range []Algorithm{LCM, Eclat, FPGrowth, Apriori, "hmine", "tidset", "diffset"} {
		for _, workers := range []int{1, 4} {
			sets, snap, err := WithMetrics(db, algo, 0, minsup, workers)
			if err != nil {
				t.Fatalf("%s/w%d: %v", algo, workers, err)
			}
			if got := resultMap(sets); !got.Equal(wantRS) {
				t.Errorf("%s/w%d: results diverge:\n%s", algo, workers, wantRS.Diff(got, 5))
			}
			if snap.Kernel == "" {
				t.Errorf("%s/w%d: snapshot has no kernel name", algo, workers)
			}
			if snap.Emitted != uint64(len(sets)) {
				t.Errorf("%s/w%d: emitted counter %d, want %d", algo, workers, snap.Emitted, len(sets))
			}
			if snap.WallNanos <= 0 {
				t.Errorf("%s/w%d: no wall time recorded", algo, workers)
			}
		}
	}
}

func TestWithMetricsSequentialParallelCountersAgree(t *testing.T) {
	db := testDB()
	minsup := 20
	_, seq, err := WithMetrics(db, LCM, 0, minsup, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, par, err := WithMetrics(db, LCM, 0, minsup, 4, ParallelCutoff(64))
	if err != nil {
		t.Fatal(err)
	}
	// Emission count is schedule-independent; node/support counts may vary
	// slightly (stolen subtrees rebuild their counters) but must be close.
	if seq.Emitted != par.Emitted {
		t.Errorf("emitted: seq %d, par %d", seq.Emitted, par.Emitted)
	}
	if seq.Nodes == 0 || par.Nodes == 0 {
		t.Fatalf("node counters not populated: seq %d, par %d", seq.Nodes, par.Nodes)
	}
	if par.Parallel == nil {
		t.Fatal("parallel run produced no parallel section")
	}
	if par.Parallel.TasksSpawned == 0 {
		t.Error("parallel run spawned no tasks")
	}
	if len(par.Parallel.Workers) != 4 {
		t.Errorf("worker stats: %d entries, want 4", len(par.Parallel.Workers))
	}
	if seq.Parallel != nil {
		t.Errorf("sequential run has a parallel section: %+v", seq.Parallel)
	}
}

func TestSnapshotJSONRoundTripPublic(t *testing.T) {
	db := testDB()
	_, snap, err := WithMetrics(db, Eclat, Applicable(Eclat), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("snapshot does not round-trip through encoding/json:\nbefore %+v\nafter  %+v", snap, back)
	}
}
