package fpm

// Chaos differential test: the robustness acceptance net. Each randomized
// corpus is mined out-of-core while the failpoint registry injects the
// failures a production run would meet — a crash between pass-1 chunks, a
// crash between pass-2 recount chunks, I/O errors and short reads under
// the FIMI readers, worker panics inside the scheduler, failing checkpoint
// writes, and context cancellation — in randomized kill/resume cycles.
// After every interrupted round the sidecar must still decode cleanly (the
// atomic temp-file + rename discipline means a crash can tear nothing),
// and the final resumed run must produce a canonical listing byte-identical
// to the clean in-memory answer. CI runs this under -race -short.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fpm/internal/failpoint"
	"fpm/internal/fimi"
	"fpm/internal/partition"
)

// chaosFault is one injectable failure mode; arm installs it into a fresh
// registry. assertEqualOnSuccess is false for faults that silently change
// the observed input (short reads): a run that "completes" under them saw a
// truncated dataset, so its output is discarded rather than compared.
type chaosFault struct {
	name                 string
	needsPool            bool
	assertEqualOnSuccess bool
	arm                  func(reg *failpoint.Registry, rng *rand.Rand, est int64)
}

var errChaosCrash = errors.New("chaos: injected crash")

var chaosFaults = []chaosFault{
	{name: "pass1-crash", assertEqualOnSuccess: true,
		arm: func(reg *failpoint.Registry, rng *rand.Rand, est int64) {
			reg.FailAfter(failpoint.PartitionChunkMine, rng.Intn(3), errChaosCrash)
		}},
	{name: "pass2-crash", assertEqualOnSuccess: true,
		arm: func(reg *failpoint.Registry, rng *rand.Rand, est int64) {
			reg.FailAfter(failpoint.PartitionRecountChunk, rng.Intn(2), errChaosCrash)
		}},
	{name: "read-error", assertEqualOnSuccess: true,
		arm: func(reg *failpoint.Registry, rng *rand.Rand, est int64) {
			reg.Fail(failpoint.FimiRead, errChaosCrash)
		}},
	{name: "short-read", assertEqualOnSuccess: false,
		arm: func(reg *failpoint.Registry, rng *rand.Rand, est int64) {
			// Truncate the stream somewhere inside the file. The run may
			// fail (mid-line truncation) or "succeed" on the shorter
			// dataset; either way the checkpoint identity (TotalTx) stops a
			// later resume from trusting its progress.
			reg.ShortRead(failpoint.FimiRead, 1+rng.Int63n(est))
		}},
	{name: "worker-panic", needsPool: true, assertEqualOnSuccess: true,
		arm: func(reg *failpoint.Registry, rng *rand.Rand, est int64) {
			reg.Panic(failpoint.ParallelWorkerTask, rng.Intn(4), "chaos")
		}},
	{name: "checkpoint-write-fail", assertEqualOnSuccess: true,
		arm: func(reg *failpoint.Registry, rng *rand.Rand, est int64) {
			reg.Fail(failpoint.PartitionCheckpointWrite, errChaosCrash)
		}},
}

// assertSidecarIntact fails the test when the checkpoint sidecar is torn:
// if the file exists it must decode, and no temp file may linger.
func assertSidecarIntact(t *testing.T, ckpt string) {
	t.Helper()
	if _, err := os.Stat(ckpt); err == nil {
		if _, derr := partition.LoadCheckpoint(ckpt); derr != nil {
			t.Fatalf("sidecar torn after interrupted run: %v", derr)
		}
	} else if !os.IsNotExist(err) {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp checkpoint left behind: %v", err)
	}
}

// TestChaosKillResumeDifferential drives 30 randomized corpora through
// randomized fault/kill/resume cycles and asserts the survivors of every
// storm equal the clean answer, byte for byte. The failpoint registry is
// process-global, so this test never runs in parallel with others.
func TestChaosKillResumeDifferential(t *testing.T) {
	defer failpoint.Disable()
	rng := rand.New(rand.NewSource(20260809))
	algos := []Algorithm{LCM, Eclat, FPGrowth}
	var chunksSkipped, faultyRounds uint64

	for i, tc := range partCases(30) {
		tc := tc
		workers := 1
		if i%2 == 1 {
			workers = 4
		}
		algo := algos[i%len(algos)]
		t.Run(fmt.Sprintf("%s-%s-w%d", tc.name, algo, workers), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "db.dat")
			if err := WriteFIMIFile(path, tc.db); err != nil {
				t.Fatal(err)
			}
			est := fimi.DBBytes(tc.db)
			budget := 8 * est / 3 // a few chunks
			if rng.Intn(2) == 1 {
				budget = 8 * est / 16 // many chunks
			}
			inMem, err := Mine(tc.db, algo, Applicable(algo), tc.minsup)
			if err != nil {
				t.Fatal(err)
			}
			want := canonListing(inMem)
			ckpt := filepath.Join(dir, "db.fpmck")

			run := func(ctx context.Context) ([]Itemset, PartitionSnapshot, error) {
				rc := PartitionRunConfig{Ctx: ctx, Checkpoint: ckpt, Resume: true}
				return MinePartitionedWithConfig(path, algo, Applicable(algo), tc.minsup,
					budget, workers, rc, ParallelCutoff(64))
			}

			// Fault rounds: each arms one failure mode, runs, and checks
			// the wreckage is sane. Interleave an occasional cancellation
			// "kill" between them.
			for round, nRounds := 0, 1+rng.Intn(3); round < nRounds; round++ {
				if rng.Intn(4) == 0 {
					ctx, cancelRun := context.WithCancel(context.Background())
					cancelRun() // cancelled before the first chunk: a kill -9 stand-in
					if _, _, err := run(ctx); err != nil && !errors.Is(err, context.Canceled) {
						t.Fatalf("cancelled round: %v", err)
					}
					assertSidecarIntact(t, ckpt)
				}
				f := chaosFaults[rng.Intn(len(chaosFaults))]
				for f.needsPool && workers == 1 {
					f = chaosFaults[rng.Intn(len(chaosFaults))]
				}
				reg := failpoint.New()
				f.arm(reg, rng, est)
				failpoint.Enable(reg)
				sets, _, err := run(context.Background())
				failpoint.Disable()
				faultyRounds++
				assertSidecarIntact(t, ckpt)
				if err == nil && f.assertEqualOnSuccess {
					if got := canonListing(sets); got != want {
						t.Fatalf("round %d (%s): fault round completed with wrong output", round, f.name)
					}
				}
			}

			// The storm is over: a clean resumed run must give the exact
			// clean answer and clear the sidecar.
			sets, snap, err := run(context.Background())
			if err != nil {
				t.Fatalf("final resumed run: %v", err)
			}
			if got := canonListing(sets); got != want {
				t.Errorf("final listing differs from clean in-memory run (%d vs %d sets)",
					len(sets), len(inMem))
			}
			if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
				t.Errorf("sidecar not removed after successful run: %v", err)
			}
			chunksSkipped += snap.ChunksSkipped
		})
	}
	// Across the whole storm, resume must have actually skipped work
	// somewhere — otherwise the checkpoints were decorative and the test
	// proved less than it claims.
	if chunksSkipped == 0 {
		t.Errorf("no chunk was ever skipped on resume across %d faulty rounds", faultyRounds)
	}
}
