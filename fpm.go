// Package fpm is a frequent pattern mining library built around the
// architecture-level software optimization (ALSO) tuning patterns of Wei,
// Jiang and Snir, "Programming Patterns for Architecture-Level Software
// Optimizations on Frequent Pattern Mining" (ICDE 2007).
//
// It provides three depth-first mining kernels with selectable tuning
// patterns — LCM (horizontal array database), Eclat (vertical bit-matrix)
// and FP-Growth (FP-tree) — plus an Apriori baseline, synthetic dataset
// generators matching the paper's evaluation workloads, a trace-driven
// memory-hierarchy simulator modelling the paper's two platforms, and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Quick start:
//
//	db, err := fpm.ReadFIMIFile("transactions.dat")
//	if err != nil { ... }
//	sets, err := fpm.Mine(db, fpm.LCM, fpm.Applicable(fpm.LCM), 100)
//
// or let the library pick the kernel and patterns from the input's
// characteristics (the paper's §6 future work):
//
//	sets, rec, err := fpm.MineAuto(db, 100)
package fpm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"

	"fpm/internal/apriori"
	"fpm/internal/cancel"
	"fpm/internal/closed"
	"fpm/internal/dataset"
	"fpm/internal/eclat"
	"fpm/internal/exp"
	"fpm/internal/fimi"
	"fpm/internal/fpgrowth"
	"fpm/internal/gen"
	"fpm/internal/hmine"
	"fpm/internal/lcm"
	"fpm/internal/lexorder"
	"fpm/internal/memsim"
	"fpm/internal/metrics"
	"fpm/internal/mine"
	"fpm/internal/parallel"
	"fpm/internal/partition"
	"fpm/internal/rules"
	"fpm/internal/simkern"
	"fpm/internal/trace"
	"fpm/internal/tune"
	"fpm/internal/vertical"
)

// Core data model (see internal/dataset).
type (
	// DB is an in-memory transactional database.
	DB = dataset.DB
	// Transaction is one row: a duplicate-free item set.
	Transaction = dataset.Transaction
	// Item is a dense non-negative item identifier.
	Item = dataset.Item
	// Stats summarises input characteristics (density, clustering, ...).
	Stats = dataset.Stats
)

// Mining API (see internal/mine).
type (
	// Miner is the common mining interface.
	Miner = mine.Miner
	// Collector receives mined itemsets.
	Collector = mine.Collector
	// Itemset is a mined itemset with its support.
	Itemset = mine.Itemset
	// ResultSet is a canonical itemset→support map for comparisons.
	ResultSet = mine.ResultSet
	// SliceCollector stores every mined itemset.
	SliceCollector = mine.SliceCollector
	// CountCollector counts itemsets without storing them.
	CountCollector = mine.CountCollector
	// ShardCollector is a worker-local batched result arena.
	ShardCollector = mine.ShardCollector
	// BatchCollector is the optional Collector extension that absorbs
	// whole worker shards at merge time (see NewParallel).
	BatchCollector = mine.BatchCollector
	// Pattern is one ALSO tuning pattern flag.
	Pattern = mine.Pattern
	// PatternSet is a combination of tuning patterns.
	PatternSet = mine.PatternSet
	// Algorithm names a mining kernel.
	Algorithm = mine.Algorithm
)

// The eight ALSO tuning patterns of the paper (Table 2).
const (
	Lex         = mine.Lex         // P1 lexicographic ordering
	Adapt       = mine.Adapt       // P2 data structure adaptation
	Aggregate   = mine.Aggregate   // P3 aggregation (supernodes)
	Compact     = mine.Compact     // P4 compaction
	PrefetchPtr = mine.PrefetchPtr // P5 prefetch pointers
	Tile        = mine.Tile        // P6/P6.1 tiling
	Prefetch    = mine.Prefetch    // P7/P7.1 software (wave-front) prefetch
	SIMD        = mine.SIMD        // P8 SIMDization
)

// The mining kernels.
const (
	LCM      = mine.LCM
	Eclat    = mine.Eclat
	FPGrowth = mine.FPGrowth
	Apriori  = mine.Apriori
)

// Applicable returns the patterns the paper applies to a kernel (Table 4).
func Applicable(a Algorithm) PatternSet { return mine.Applicable(a) }

// NewMiner constructs a miner for the given kernel with the given tuning
// patterns; patterns outside Applicable(algo) are ignored by the kernels.
func NewMiner(algo Algorithm, patterns PatternSet) (Miner, error) {
	switch algo {
	case LCM:
		return lcm.New(lcm.Options{Patterns: patterns}), nil
	case Eclat:
		return eclat.New(eclat.Options{Patterns: patterns}), nil
	case FPGrowth:
		return fpgrowth.New(fpgrowth.Options{Patterns: patterns}), nil
	case Apriori:
		return apriori.New(), nil
	default:
		return nil, fmt.Errorf("fpm: unknown algorithm %q", algo)
	}
}

// Mine runs one kernel over db and returns every itemset with support >=
// minSupport.
func Mine(db *DB, algo Algorithm, patterns PatternSet, minSupport int) ([]Itemset, error) {
	m, err := NewMiner(algo, patterns)
	if err != nil {
		return nil, err
	}
	var sc SliceCollector
	if err := m.Mine(db, minSupport, &sc); err != nil {
		return nil, err
	}
	return sc.Sets, nil
}

// CancelledError reports a mining run that ended early because its context
// was cancelled or its deadline expired. Err is the context's error, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) both see through the wrapper; Progress is the
// run's counter snapshot at the moment the recursion unwound — partial, but
// an honest account of the work done before the cut.
type CancelledError struct {
	Err      error
	Progress Snapshot
}

func (e *CancelledError) Error() string { return "mining cancelled: " + e.Err.Error() }

// Unwrap exposes the context error for errors.Is / errors.As.
func (e *CancelledError) Unwrap() error { return e.Err }

// wrapCancelled converts a raw context error surfacing from the kernels,
// scheduler or partition passes into a CancelledError carrying the run's
// partial-progress snapshot; other errors pass through untouched.
func wrapCancelled(err error, rec *metrics.Recorder) error {
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return &CancelledError{Err: err, Progress: rec.Snapshot()}
	}
	return err
}

// MineContext is Mine with cooperative cancellation: the run stops within a
// few recursion nodes of ctx being cancelled (or its deadline expiring) and
// returns a *CancelledError wrapping ctx.Err(). The LCM, Eclat, FP-Growth
// and H-mine kernels poll the cancellation flag at every recursion node;
// the Apriori baseline is not internally instrumented and runs to
// completion. A context that can never be cancelled costs nothing.
func MineContext(ctx context.Context, db *DB, algo Algorithm, patterns PatternSet, minSupport int) ([]Itemset, error) {
	cf, stop := cancel.FromContext(ctx)
	defer stop()
	m, err := newCancellableMiner(algo, patterns, cf)
	if err != nil {
		return nil, err
	}
	var sc SliceCollector
	if err := m.Mine(db, minSupport, &sc); err != nil {
		return nil, wrapCancelled(err, nil)
	}
	return sc.Sets, nil
}

// newCancellableMiner is NewMiner plus a cancellation flag threaded into
// the kernels that poll one.
func newCancellableMiner(algo Algorithm, patterns PatternSet, cf *cancel.Flag) (Miner, error) {
	return newInstrumentedMiner(algo, patterns, nil, nil, cf)
}

// MineClosed returns every closed frequent itemset (no proper superset has
// equal support) via LCM's prefix-preserving closure extension — the
// problem the LCM kernel is named for.
func MineClosed(db *DB, minSupport int) ([]Itemset, error) {
	var sc SliceCollector
	if err := closed.New().Mine(db, minSupport, &sc); err != nil {
		return nil, err
	}
	return sc.Sets, nil
}

// MineMaximal returns every maximal frequent itemset (no proper superset
// is frequent).
func MineMaximal(db *DB, minSupport int) ([]Itemset, error) {
	var sc SliceCollector
	if err := closed.NewMaximal().Mine(db, minSupport, &sc); err != nil {
		return nil, err
	}
	return sc.Sets, nil
}

// FilterClosed reduces a complete frequent collection to its closed sets
// (reference implementation; MineClosed is the direct miner).
func FilterClosed(sets []Itemset) []Itemset { return closed.FilterClosed(sets) }

// FilterMaximal reduces a complete frequent collection to its maximal
// sets.
func FilterMaximal(sets []Itemset) []Itemset { return closed.FilterMaximal(sets) }

// Association rules (Agrawal et al., SIGMOD'93 — the application frequent
// pattern mining was introduced for).
type (
	// Rule is an association rule with support/confidence/lift/leverage.
	Rule = rules.Rule
	// RuleParams bound rule generation.
	RuleParams = rules.Params
)

// GenerateRules derives association rules from a complete frequent itemset
// collection; numTransactions is the mined database's size.
func GenerateRules(sets []Itemset, numTransactions int, p RuleParams) []Rule {
	return rules.Generate(sets, numTransactions, p)
}

// NewTidsetEclat returns the sparse-tidset vertical miner (Zaki's classic
// Eclat) — the sparse alternative of the P2 representation choice.
func NewTidsetEclat() Miner { return vertical.NewTidset() }

// NewDiffsetEclat returns the diffset (dEclat) vertical miner (Zaki &
// Gouda, KDD'03), whose sets shrink with recursion depth on dense data.
func NewDiffsetEclat() Miner { return vertical.NewDiffset() }

// NewHMine returns the H-mine hyper-structure miner (Pei et al., ICDM'01,
// cited by the paper as an adaptive-data-structure algorithm): transactions
// are shared, never projected; each recursion level only threads
// (transaction, position) hyper-links into per-item queues.
func NewHMine() Miner { return hmine.New() }

// ParallelOption configures NewParallel beyond the worker count.
type ParallelOption = parallel.Option

// ParallelCutoff sets the minimum estimated subtree weight (item
// occurrences in the projected database) for a subtree to become a
// stealable task; below it workers recurse sequentially. Zero or negative
// selects the built-in default.
func ParallelCutoff(weight int) ParallelOption { return parallel.WithCutoff(weight) }

// ParallelDeterministic makes the merged emission order canonical (by
// size, then items) and therefore run-to-run stable, at the cost of a
// sort over all results at merge time.
func ParallelDeterministic() ParallelOption { return parallel.WithDeterministicMerge(true) }

// ParallelFirstLevelOnly disables recursive task spawning, forcing the
// static first-level decomposition (one task per frequent item) even for
// kernels that support subtree stealing. Mainly an ablation/benchmark
// knob.
func ParallelFirstLevelOnly() ParallelOption { return parallel.WithFirstLevelOnly(true) }

// NewParallel wraps any kernel in task-parallel mining over a
// work-stealing worker pool. LCM and Eclat split recursively: any
// recursion subtree whose estimated work clears the cutoff may be stolen
// by a starved worker, so skewed inputs (one hot item owning most of the
// search tree) still balance. Other kernels parallelise by first-level
// decomposition over the same pool. workers <= 0 means GOMAXPROCS.
//
// The result set equals the sequential kernel's and every itemset is
// emitted in canonical (ascending item) order; emission order across
// subtrees is scheduling-dependent unless ParallelDeterministic is given.
// Results are buffered in per-worker arenas and merged on the caller's
// goroutine, so the Collector single-goroutine contract holds; collectors
// implementing mine.BatchCollector absorb whole shards without a
// per-itemset replay.
func NewParallel(workers int, algo Algorithm, patterns PatternSet, opts ...ParallelOption) (Miner, error) {
	if _, err := NewMiner(algo, patterns); err != nil {
		return nil, err
	}
	return parallel.New(workers, func() Miner {
		m, _ := NewMiner(algo, patterns)
		return m
	}, opts...), nil
}

// Observability (see internal/metrics): optionally-enabled run-time
// counters for native mining runs, reported through the same Snapshot
// schema the memory-hierarchy simulator uses — the reproduction's analogue
// of the hardware counters the paper profiles in Figure 2.
type (
	// Snapshot is one frozen view of a mining run's counters. Its JSON
	// encoding is the machine-readable form `fpm -stats json` emits.
	Snapshot = metrics.Snapshot
	// MetricsRecorder accumulates counters for one run; nil disables
	// recording everywhere it is threaded.
	MetricsRecorder = metrics.Recorder
	// ParallelRunStats is the scheduler section of a Snapshot.
	ParallelRunStats = metrics.ParallelStats
	// WorkerRunStat is one worker's share of a parallel run.
	WorkerRunStat = metrics.WorkerStat
	// SimRunStats is the simulated cache/CPI section of a Snapshot.
	SimRunStats = metrics.SimStats
)

// NewMetricsRecorder returns an enabled recorder to thread through
// NewMinerWithMetrics / ParallelMetrics; call Start before mining, Stop
// after, and Snapshot to freeze the totals.
func NewMetricsRecorder() *MetricsRecorder { return metrics.NewRecorder() }

// NewMinerWithMetrics is NewMiner with run-time counter recording into rec.
// The LCM, Eclat and FP-Growth kernels record nodes expanded, support
// countings, itemsets emitted and candidate prunes; the Apriori baseline is
// not internally instrumented (wrap its collector, as WithMetrics does, to
// count emissions). A nil rec behaves exactly like NewMiner.
func NewMinerWithMetrics(algo Algorithm, patterns PatternSet, rec *MetricsRecorder) (Miner, error) {
	return newInstrumentedMiner(algo, patterns, rec, nil, nil)
}

// newInstrumentedMiner constructs a kernel with counter recording, optional
// kernel-span tracing and optional cooperative cancellation. tr must only
// be non-nil for miners that will run sequentially — under the scheduler
// the worker task spans own the timeline (see the kernels' Trace option
// docs). cf, when non-nil, is polled at every recursion node of the three
// instrumented kernels; once it trips, Mine returns cf.Err().
func newInstrumentedMiner(algo Algorithm, patterns PatternSet, rec *MetricsRecorder, tr *trace.Recorder, cf *cancel.Flag) (Miner, error) {
	switch algo {
	case LCM:
		return lcm.New(lcm.Options{Patterns: patterns, Metrics: rec, Trace: tr, Cancel: cf}), nil
	case Eclat:
		return eclat.New(eclat.Options{Patterns: patterns, Metrics: rec, Trace: tr, Cancel: cf}), nil
	case FPGrowth:
		return fpgrowth.New(fpgrowth.Options{Patterns: patterns, Metrics: rec, Trace: tr, Cancel: cf}), nil
	default:
		return NewMiner(algo, patterns)
	}
}

// TraceRecorder records one run's span timeline — scheduler tasks, worker
// idle gaps, steal markers, kernel first-level subtrees, partition phases
// and chunks, plus counter series sampled from the run's MetricsRecorder —
// and serialises it as Chrome trace-event JSON loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. A nil *TraceRecorder is
// the disabled recorder everywhere it is threaded.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns an enabled trace recorder whose Flush writes
// the trace-event JSON to w. Thread it through a run with ParallelTrace
// (or use WithTrace for the common one-shot case).
func NewTraceRecorder(w io.Writer) *TraceRecorder {
	return trace.NewRecorder(trace.WithOutput(w))
}

// WithTrace enables execution tracing for one observed mining run
// (WithMetrics or MinePartitioned): span timelines for every scheduler
// worker and partition phase are recorded and written to w as Chrome
// trace-event JSON when the run ends. A failing writer never interrupts
// mining — the run completes and the write error is returned once,
// alongside the full results.
func WithTrace(w io.Writer) ParallelOption {
	return parallel.WithTrace(trace.NewRecorder(trace.WithOutput(w)))
}

// ParallelTrace routes span timelines into an existing trace recorder,
// for callers that manage the recorder lifecycle themselves (call Start
// before mining, Stop after, and Flush/WriteJSON to serialise).
func ParallelTrace(tr *TraceRecorder) ParallelOption { return parallel.WithTrace(tr) }

// WithContext makes one observed run (WithMetrics, MinePartitioned or
// MinePartitionedWithConfig) cancellable: when ctx is cancelled or its
// deadline expires, the kernels unwind within a few recursion nodes, the
// scheduler drops its queued tasks, the partition passes stop at the next
// chunk boundary, and the run returns a *CancelledError wrapping ctx.Err()
// with the partial-progress Snapshot attached. A context that can never be
// cancelled (context.Background()) adds no cost.
func WithContext(ctx context.Context) ParallelOption { return parallel.WithContext(ctx) }

// NewHMineRecording is NewHMine with counter recording into rec.
func NewHMineRecording(rec *MetricsRecorder) Miner { return hmine.NewRecording(rec) }

// ParallelMetrics routes the work-stealing scheduler's counters (tasks
// spawned/offered/stolen, steal failures, shard-merge time, per-worker
// utilization) into rec. Kernel-level counters are recorded by the inner
// miners when they are built with the same recorder (see WithMetrics).
func ParallelMetrics(rec *MetricsRecorder) ParallelOption { return parallel.WithMetrics(rec) }

// recordingCollector counts emissions for miners without internal
// instrumentation; the count is flushed into the recorder when mining ends.
type recordingCollector struct {
	inner Collector
	met   *metrics.Local
}

func (rc *recordingCollector) Collect(items []Item, support int) {
	rc.met.Emit()
	rc.inner.Collect(items, support)
}

// countingMiner wraps an uninstrumented miner so every subtree it mines on
// a parallel worker records its emissions; the local is flushed per Mine
// call (one first-level task), which is exactly the coarse-boundary flush
// discipline the instrumented kernels follow.
type countingMiner struct {
	inner Miner
	rec   *metrics.Recorder
}

func (cm *countingMiner) Name() string { return cm.inner.Name() }

func (cm *countingMiner) Mine(db *DB, minSupport int, c Collector) error {
	rc := &recordingCollector{inner: c, met: cm.rec.NewLocal()}
	err := cm.inner.Mine(db, minSupport, rc)
	cm.rec.Flush(rc.met)
	return err
}

// WithMetrics mines db with run-time counters enabled and returns the run's
// Snapshot alongside the results — the native-run analogue of Simulate's
// per-phase report (use SimReport.Snapshot to view a simulation through the
// same schema). workers == 1 mines sequentially; any other value mines
// through the work-stealing pool exactly like NewParallel (0 means
// GOMAXPROCS), with scheduler counters included in the Snapshot. Beyond the
// four NewMiner kernels, algo accepts "hmine", "tidset" and "diffset"
// (sequential only — patterns and workers are ignored for them as in the
// CLI).
//
// ParallelMetrics routes the run into an existing recorder (so a live
// telemetry server can scrape the counters mid-run); without it a private
// recorder is used. WithTrace / ParallelTrace additionally record the
// run's span timeline; a failing trace sink never interrupts mining — the
// results and Snapshot are returned together with the single flush error.
func WithMetrics(db *DB, algo Algorithm, patterns PatternSet, minSupport, workers int, opts ...ParallelOption) ([]Itemset, Snapshot, error) {
	var po parallel.Options
	for _, fn := range opts {
		fn(&po)
	}
	rec := po.Metrics
	if rec == nil {
		rec = metrics.NewRecorder()
		opts = append(opts, parallel.WithMetrics(rec))
	}
	tr := po.Trace
	// Arm one cancellation flag per run from the WithContext option and
	// share it between the kernels (node-granular latency) and the pool
	// (task-granular draining); the watcher goroutine is joined before
	// returning.
	cf, stopWatch := cancel.FromContext(po.Ctx)
	defer stopWatch()
	if cf != nil {
		opts = append(opts, parallel.WithCancel(cf))
	}
	if algo == "hmine" || algo == "tidset" || algo == "diffset" {
		workers = 1 // these alternatives mine sequentially, as in the CLI
	}
	var (
		m   Miner
		err error
	)
	switch algo {
	case "hmine":
		m = hmine.NewInstrumented(rec, tr, cf)
	case "tidset":
		m = vertical.NewTidset()
	case "diffset":
		m = vertical.NewDiffset()
	default:
		if workers == 1 {
			m, err = newInstrumentedMiner(algo, patterns, rec, tr, cf)
		} else {
			if _, err = NewMiner(algo, patterns); err == nil {
				m = parallel.New(workers, func() Miner {
					im, _ := newInstrumentedMiner(algo, patterns, rec, nil, cf)
					if algo == Apriori {
						// Not internally instrumented: count each worker's
						// emissions at its own collector (the scheduler
						// counts the first-level roots it emits itself).
						im = &countingMiner{inner: im, rec: rec}
					}
					return im
				}, opts...)
			}
		}
	}
	if err != nil {
		return nil, Snapshot{}, err
	}

	var sc SliceCollector
	var c Collector = &sc
	if (algo == Apriori && workers == 1) || algo == "tidset" || algo == "diffset" {
		// Not internally instrumented: count emissions at the collector.
		c = &recordingCollector{inner: &sc, met: rec.NewLocal()}
	}
	poolSize := 0
	if workers != 1 {
		poolSize = workers
		if poolSize <= 0 {
			poolSize = runtime.GOMAXPROCS(0)
		}
	}
	rec.Start(m.Name(), poolSize)
	tr.Start(m.Name(), rec)
	err = m.Mine(db, minSupport, c)
	rec.Stop()
	tr.Stop()
	if rc, ok := c.(*recordingCollector); ok {
		rec.Flush(rc.met)
	}
	if err != nil {
		return nil, Snapshot{}, wrapCancelled(err, rec)
	}
	snap := rec.Snapshot()
	if ferr := tr.Flush(); ferr != nil {
		// Mining completed; surface the failing trace sink once, with the
		// full results still attached.
		return sc.Sets, snap, ferr
	}
	return sc.Sets, snap, nil
}

// Out-of-core mining (see internal/partition): SON-style two-pass
// partitioned mining for FIMI files larger than memory.

// PartitionSnapshot summarises one out-of-core run: chunks mined,
// candidates generated and surviving, bytes streamed and wall time per
// pass. It is the `partition` section of the Snapshot schema.
type PartitionSnapshot = metrics.PartitionStats

// MinePartitioned mines the FIMI file at path without ever holding more
// than one bounded chunk of it in memory, and returns exactly the
// itemsets Mine would return on the loaded database — in canonical order
// (by size, then items) with exact global supports — alongside the run's
// two-pass counters. Pass 1 streams the file in chunks sized to
// memBudget, mining each with the chosen kernel (through the
// work-stealing pool when workers != 1; 0 means GOMAXPROCS) at a support
// threshold scaled to the chunk's share of the database, and unions the
// locally-frequent results into a candidate trie; pass 2 re-streams the
// file to count every candidate's exact global support and filters to the
// true answer. The memory budget covers the resident chunk plus the
// kernel's working set; peak heap is bounded by it (×2 with GC headroom)
// rather than by the file size. The file must be seekable. Options are
// the NewParallel options; ParallelMetrics additionally routes the
// partition and scheduler counters into the given recorder (the returned
// PartitionSnapshot is recorded either way), and WithTrace / ParallelTrace
// record the run's span timeline — the partition phase track plus, when
// workers != 1, the per-worker scheduler tracks. A failing trace sink
// never interrupts mining: the results are returned together with the
// single flush error.
func MinePartitioned(path string, algo Algorithm, patterns PatternSet, minSupport int, memBudget int64, workers int, opts ...ParallelOption) ([]Itemset, PartitionSnapshot, error) {
	return MinePartitionedWithConfig(path, algo, patterns, minSupport, memBudget, workers, PartitionRunConfig{}, opts...)
}

// PartitionRunConfig bundles the robustness knobs of an out-of-core run:
// cooperative cancellation and crash-safe checkpoint/resume. The zero
// value disables all of them (MinePartitioned's behaviour).
type PartitionRunConfig struct {
	// Ctx, when cancellable, aborts the run at the next chunk boundary
	// (and, inside a chunk, at the kernels' recursion nodes); the run then
	// returns a *CancelledError wrapping ctx.Err(). Equivalent to passing
	// WithContext(ctx) as an option.
	Ctx context.Context
	// Checkpoint, when non-empty, is the sidecar file where progress is
	// persisted after every chunk with an atomic temp-file + rename, so a
	// crashed (or cancelled) run loses at most the chunk in flight. It is
	// removed when the run completes. Writes are best-effort: a failing
	// write is counted in the snapshot's CheckpointsFailed and mining
	// continues with the previous sidecar intact.
	Checkpoint string
	// Resume, when true (with Checkpoint set), validates the sidecar
	// against this run's input (size + content prefix hash + transaction
	// count) and configuration (kernel, patterns, support, memory budget)
	// and skips every chunk the previous run completed. A missing, corrupt
	// or mismatched sidecar silently degrades to a fresh run.
	Resume bool
	// ChunkLex applies pattern P1 (lexicographic reordering) per pass-1
	// chunk: each resident chunk is relabeled and re-sorted by its own
	// frequency profile before mining, and candidates are mapped back to
	// the global alphabet, so the result is unchanged. See EXPERIMENTS.md
	// for when this pays.
	ChunkLex bool
}

// MinePartitionedWithConfig is MinePartitioned plus the robustness knobs of
// PartitionRunConfig; see that type for the semantics.
func MinePartitionedWithConfig(path string, algo Algorithm, patterns PatternSet, minSupport int, memBudget int64, workers int, rc PartitionRunConfig, opts ...ParallelOption) ([]Itemset, PartitionSnapshot, error) {
	if _, err := NewMiner(algo, patterns); err != nil {
		return nil, PartitionSnapshot{}, err
	}
	var po parallel.Options
	for _, fn := range opts {
		fn(&po)
	}
	rec := po.Metrics
	if rec == nil {
		rec = metrics.NewRecorder()
	}
	tr := po.Trace
	ctx := rc.Ctx
	if ctx == nil {
		ctx = po.Ctx
	}
	cf, stopWatch := cancel.FromContext(ctx)
	defer stopWatch()
	cfg := partition.Config{
		MemBudget:  memBudget,
		Workers:    workers,
		Cutoff:     po.Cutoff,
		Metrics:    rec,
		Trace:      tr,
		Cancel:     cf,
		Checkpoint: rc.Checkpoint,
		Resume:     rc.Resume,
		ChunkLex:   rc.ChunkLex,
	}
	// Kernel-level first-level spans apply only when chunks mine
	// sequentially; under the per-chunk pool the worker task spans own the
	// timeline.
	var ktr *trace.Recorder
	if workers == 1 {
		ktr = tr
	}
	factory := func() Miner {
		m, _ := newInstrumentedMiner(algo, patterns, rec, ktr, cf)
		return m
	}
	poolSize := 0
	if workers != 1 {
		poolSize = workers
		if poolSize <= 0 {
			poolSize = runtime.GOMAXPROCS(0)
		}
	}
	name := "partitioned(" + factory().Name() + ")"
	rec.Start(name, poolSize)
	tr.Start(name, rec)
	var sc SliceCollector
	err := partition.Mine(path, factory, minSupport, cfg, &sc)
	rec.Stop()
	tr.Stop()
	if err != nil {
		return nil, PartitionSnapshot{}, wrapCancelled(err, rec)
	}
	snap := rec.Snapshot()
	psnap := PartitionSnapshot{MemBudget: memBudget}
	if snap.Partition != nil {
		psnap = *snap.Partition
	}
	if ferr := tr.Flush(); ferr != nil {
		return sc.Sets, psnap, ferr
	}
	return sc.Sets, psnap, nil
}

// NewCacheConsciousFPGrowth returns FP-Growth with the depth-first arena
// relayout of Ghoting et al. (VLDB'05) on top of the given patterns — one
// of the complementary prior optimizations the paper's Table 4 marks as
// "( )". The Adapt pattern is implied (the relayout needs the arena
// layout).
func NewCacheConsciousFPGrowth(patterns PatternSet) Miner {
	return fpgrowth.New(fpgrowth.Options{Patterns: patterns.With(Adapt), CacheConscious: true})
}

// Recommendation re-exports the autotuner's output type.
type Recommendation = tune.Recommendation

// Recommend selects a kernel and pattern set for the input's measured
// characteristics, targeting the M1 machine model — the paper's §6 future
// work made executable. Use RecommendFor to target another machine.
func Recommend(db *DB, minSupport int) Recommendation {
	return tune.Recommend(dataset.ComputeStats(db), minSupport, memsim.M1())
}

// RecommendFor is Recommend against an explicit machine model.
func RecommendFor(db *DB, minSupport int, cfg MachineConfig) Recommendation {
	return tune.Recommend(dataset.ComputeStats(db), minSupport, cfg)
}

// MineAuto mines with the recommended kernel and patterns, returning the
// recommendation alongside the results.
func MineAuto(db *DB, minSupport int) ([]Itemset, Recommendation, error) {
	rec := Recommend(db, minSupport)
	sets, err := Mine(db, rec.Algorithm, rec.Patterns, minSupport)
	return sets, rec, err
}

// ComputeStats scans the database and returns its characteristics.
func ComputeStats(db *DB) Stats { return dataset.ComputeStats(db) }

// Lexicographic ordering utilities (pattern P1 as a standalone transform).
type Ordering = lexorder.Ordering

// LexOrder returns the database in the paper's Table 1 lexicographic
// layout together with the item relabeling.
func LexOrder(db *DB) (*DB, *Ordering) { return lexorder.Apply(db) }

// FIMI-format I/O.
var (
	// ReadFIMI parses the FIMI workshop flat format from r.
	ReadFIMI = fimi.Read
	// WriteFIMI writes db to w in FIMI format.
	WriteFIMI = fimi.Write
	// ReadFIMIFile loads a FIMI file from disk.
	ReadFIMIFile = fimi.ReadFile
	// WriteFIMIFile stores db to disk in FIMI format.
	WriteFIMIFile = fimi.WriteFile
)

// Synthetic workload generation (see internal/gen).
type (
	// QuestConfig parameterises the IBM Quest generator (TxxIyyDzzz).
	QuestConfig = gen.QuestConfig
	// CorpusConfig parameterises the document-corpus generators.
	CorpusConfig = gen.CorpusConfig
	// NamedDataset is one of the paper's Table 6 evaluation datasets.
	NamedDataset = gen.NamedDataset
)

// GenerateQuest runs the Quest synthetic generator.
func GenerateQuest(cfg QuestConfig) *DB { return gen.Quest(cfg) }

// ParseQuestName converts a canonical TxxIyyDzzz[K|M] dataset name (the
// FIMI naming convention, e.g. "T60I10D300K") into a QuestConfig.
var ParseQuestName = gen.ParseQuestName

// GenerateCorpus runs the document-corpus generator.
func GenerateCorpus(cfg CorpusConfig) *DB { return gen.Corpus(cfg) }

// Table6Datasets generates the paper's four evaluation datasets at the
// given scale (1.0 = the paper's sizes).
func Table6Datasets(scale float64, seed int64) []NamedDataset { return gen.Table6(scale, seed) }

// Machine models and simulation (see internal/memsim, internal/exp).
type MachineConfig = memsim.Config

// M1 returns the Pentium D 830 machine model (paper Table 5).
func M1() MachineConfig { return memsim.M1() }

// M2 returns the Athlon 64 X2 4200+ machine model (paper Table 5).
func M2() MachineConfig { return memsim.M2() }

// Simulation of kernels on modelled hardware (see internal/simkern).
type (
	// SimReport is the outcome of one instrumented kernel run: cycles,
	// instructions and miss counts per kernel phase.
	SimReport = simkern.Report
	// SimPhase is one kernel function's accounting (the Figure 2
	// granularity).
	SimPhase = simkern.Phase
)

// Simulate replays the instrumented kernel for algo over db on the given
// machine model, honouring the tuning patterns, and returns the per-phase
// cycle accounting. Only the three studied kernels are instrumented.
func Simulate(algo Algorithm, db *DB, minSupport int, patterns PatternSet, cfg MachineConfig) (SimReport, error) {
	switch algo {
	case LCM:
		return simkern.LCM(db, minSupport, patterns, cfg, simkern.LCMOptions{MaxColumns: 200}), nil
	case Eclat:
		return simkern.Eclat(db, minSupport, patterns, cfg, simkern.EclatOptions{}), nil
	case FPGrowth:
		return simkern.FPGrowth(db, minSupport, patterns, cfg, simkern.FPGrowthOptions{}), nil
	default:
		return SimReport{}, fmt.Errorf("fpm: no instrumented kernel for %q", algo)
	}
}

// ExperimentOptions configure the paper-reproduction harness.
type ExperimentOptions = exp.Options

// Experiment entry points: each regenerates one artifact of the paper's
// evaluation (experiment ids per DESIGN.md §4).
func PrintTable2(w io.Writer)                         { exp.Table2(w) }
func PrintTable3(w io.Writer)                         { exp.Table3(w) }
func PrintTable4(w io.Writer)                         { exp.Table4(w) }
func PrintTable5(w io.Writer)                         { exp.Table5(w) }
func PrintTable6(w io.Writer, o ExperimentOptions)    { exp.Table6(w, o) }
func PrintFigure2(w io.Writer, o ExperimentOptions)   { exp.PrintFigure2(w, o) }
func PrintFigure8(w io.Writer, o ExperimentOptions)   { exp.PrintFigure8(w, o) }
func PrintAblations(w io.Writer, o ExperimentOptions) { exp.PrintAblations(w, o) }

// PrintBaselineTimes measures and prints the untuned native kernels'
// wall-clock times on the Table 6 datasets (the paper's "no single best
// algorithm" comparison).
func PrintBaselineTimes(w io.Writer, o ExperimentOptions) { exp.PrintBaselineTimes(w, o) }

// PrintShapeChecks verifies the paper's quantitative claims against this
// reproduction and prints a PASS/FAIL table (the core of EXPERIMENTS.md).
func PrintShapeChecks(w io.Writer, o ExperimentOptions) { exp.PrintShapeChecks(w, o) }
