package fpm

import (
	"bytes"
	"strings"
	"testing"
)

func testDB() *DB {
	db := GenerateQuest(QuestConfig{
		Transactions: 300, AvgLen: 10, AvgPatternLen: 4,
		Items: 50, Patterns: 20, Seed: 3,
	})
	return db
}

func TestMineAllAlgorithmsAgree(t *testing.T) {
	db := testDB()
	minsup := 20
	var want map[string]int
	for _, algo := range []Algorithm{LCM, Eclat, FPGrowth, Apriori} {
		sets, err := Mine(db, algo, Applicable(algo), minsup)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		got := map[string]int{}
		for _, s := range sets {
			rs := ResultSet{}
			rs.Collect(s.Items, s.Support)
			for k, v := range rs {
				got[k] = v
			}
		}
		if want == nil {
			want = got
			if len(want) == 0 {
				t.Fatal("degenerate workload")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s mined %d itemsets, want %d", algo, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s: %s support %d, want %d", algo, k, got[k], v)
			}
		}
	}
}

func TestNewMinerUnknown(t *testing.T) {
	if _, err := NewMiner(Algorithm("nope"), 0); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestMineAutoRunsAndExplains(t *testing.T) {
	db := testDB()
	sets, rec, err := MineAuto(db, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) == 0 {
		t.Fatal("MineAuto found nothing")
	}
	if len(rec.Rationale) == 0 {
		t.Fatal("recommendation has no rationale")
	}
	// The recommendation must be reproducible via the explicit path.
	again, err := Mine(db, rec.Algorithm, rec.Patterns, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(sets) {
		t.Fatalf("explicit path mined %d, auto mined %d", len(again), len(sets))
	}
}

func TestFIMIRoundTripThroughPublicAPI(t *testing.T) {
	db := testDB()
	var buf bytes.Buffer
	if err := WriteFIMI(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFIMI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Mine(db, LCM, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(back, LCM, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("round-tripped database mines differently: %d vs %d", len(a), len(b))
	}
}

func TestLexOrderPublic(t *testing.T) {
	db := testDB()
	lexed, ord := LexOrder(db)
	if lexed.Len() != db.Len() {
		t.Fatal("LexOrder changed transaction count")
	}
	if ord == nil || len(ord.Orig) != db.NumItems {
		t.Fatal("missing ordering")
	}
	// Mining the lex layout with restored labels equals mining the
	// original.
	a, _ := Mine(db, Eclat, 0, 20)
	b, _ := Mine(lexed, Eclat, 0, 20)
	if len(a) != len(b) {
		t.Fatalf("lex layout mines %d itemsets, original %d", len(b), len(a))
	}
}

func TestStatsAndMachines(t *testing.T) {
	s := ComputeStats(testDB())
	if s.Transactions != 300 || s.AvgLen <= 0 {
		t.Fatalf("stats: %+v", s)
	}
	if M1().L1.SizeBytes >= M2().L1.SizeBytes {
		t.Fatal("machine models swapped")
	}
}

func TestExperimentPrintersSmoke(t *testing.T) {
	var buf bytes.Buffer
	PrintTable4(&buf)
	PrintTable5(&buf)
	o := ExperimentOptions{Scale: 0.001, Seed: 5, MaxColumns: 12, MaxVectors: 12}
	PrintTable6(&buf, o)
	out := buf.String()
	for _, want := range []string{"SIMDization", "Pentium", "DS4"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q", want)
		}
	}
}

func TestTable6DatasetsPublic(t *testing.T) {
	sets := Table6Datasets(0.001, 9)
	if len(sets) != 4 {
		t.Fatalf("got %d datasets", len(sets))
	}
	for _, d := range sets {
		if err := d.DB.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}
