package fpm

// Differential property test: on randomized corpora spanning the density /
// skew / support space, every kernel (with and without its applicable
// tuning patterns), the brute-force oracle, and the parallel miner (both
// worker counts, both merge modes) must produce the identical frequent
// itemset set. This is the strongest correctness net in the repository: the
// tuning patterns are pure performance transformations, so ANY divergence
// between configurations is a bug.

import (
	"fmt"
	"math/rand"
	"testing"

	"fpm/internal/mine"
)

// diffCase is one randomized corpus plus its mining support.
type diffCase struct {
	name    string
	db      *DB
	minsup  int
	// parAlgo rotates which kernel the parallel runs exercise, so across
	// the suite all of lcm/eclat/fpgrowth go through the scheduler.
	parAlgo Algorithm
}

// diffCases derives n corpora from a fixed seed. Half are Quest-style
// (sparse, market-basket), half Zipf-topic corpora (dense head, clustered);
// density, skew and relative support vary per case.
func diffCases(n int) []diffCase {
	rng := rand.New(rand.NewSource(20260806))
	parAlgos := []Algorithm{LCM, Eclat, FPGrowth}
	cases := make([]diffCase, 0, n)
	for i := 0; i < n; i++ {
		var db *DB
		var kind string
		if i%2 == 0 {
			cfg := QuestConfig{
				Transactions:  150 + rng.Intn(250),
				AvgLen:        6 + rng.Intn(10),
				AvgPatternLen: 3 + rng.Intn(4),
				Items:         30 + rng.Intn(70),
				Patterns:      15 + rng.Intn(30),
				Seed:          rng.Int63(),
			}
			db = GenerateQuest(cfg)
			kind = "quest"
		} else {
			cfg := CorpusConfig{
				Docs:       150 + rng.Intn(250),
				Vocab:      40 + rng.Intn(80),
				AvgLen:     5 + 8*rng.Float64(),
				ZipfS:      1.1 + 0.8*rng.Float64(),
				Topics:     rng.Intn(7),
				TopicShare: 0.3 + 0.5*rng.Float64(),
				TopicPool:  20 + rng.Intn(30),
				Shuffle:    rng.Intn(2) == 0,
				Seed:       rng.Int63(),
			}
			db = GenerateCorpus(cfg)
			kind = "corpus"
		}
		// Relative support 3%–12%, absolute floor 2: low enough to grow a
		// real search tree, high enough to keep the oracle tractable.
		frac := 0.03 + 0.09*rng.Float64()
		minsup := int(frac * float64(db.Len()))
		if minsup < 2 {
			minsup = 2
		}
		cases = append(cases, diffCase{
			name:    fmt.Sprintf("%02d-%s-n%d-s%d", i, kind, db.Len(), minsup),
			db:      db,
			minsup:  minsup,
			parAlgo: parAlgos[i%len(parAlgos)],
		})
	}
	return cases
}

// mineSet runs m and returns the canonical itemset→support map.
func mineSet(t *testing.T, m Miner, db *DB, minsup int) ResultSet {
	t.Helper()
	rs := ResultSet{}
	if err := m.Mine(db, minsup, rs); err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return rs
}

// checkAgainst fails the test with a bounded diff when got diverges from
// the oracle.
func checkAgainst(t *testing.T, label string, want, got ResultSet) {
	t.Helper()
	if !got.Equal(want) {
		t.Errorf("%s diverges from oracle (%d vs %d itemsets):\n%s",
			label, len(got), len(want), want.Diff(got, 10))
	}
}

func TestDifferentialAllMinersAgree(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 12
	}
	for _, tc := range diffCases(n) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want := mineSet(t, mine.BruteForce{}, tc.db, tc.minsup)
			if len(want) > 200_000 {
				t.Skipf("oracle produced %d itemsets; corpus too dense to cross-check cheaply", len(want))
			}

			// All four kernels, untuned and fully tuned: patterns are
			// performance-only transformations and must not change results.
			for _, algo := range []Algorithm{LCM, Eclat, FPGrowth} {
				for _, ps := range []PatternSet{0, Applicable(algo)} {
					m, err := NewMiner(algo, ps)
					if err != nil {
						t.Fatal(err)
					}
					checkAgainst(t, m.Name(), want, mineSet(t, m, tc.db, tc.minsup))
				}
			}
			checkAgainst(t, "hmine", want, mineSet(t, NewHMine(), tc.db, tc.minsup))

			// Parallel: sequential-equivalent (workers=1) and contended
			// (workers=4), with both merge modes on the contended pool.
			for _, pc := range []struct {
				workers int
				det     bool
			}{{1, false}, {4, false}, {4, true}} {
				opts := []ParallelOption{ParallelCutoff(64)}
				if pc.det {
					opts = append(opts, ParallelDeterministic())
				}
				pm, err := NewParallel(pc.workers, tc.parAlgo, Applicable(tc.parAlgo), opts...)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/w%d/det=%v", pm.Name(), pc.workers, pc.det)
				checkAgainst(t, label, want, mineSet(t, pm, tc.db, tc.minsup))
			}
		})
	}
}
