package fpm

// Differential property test: on randomized corpora spanning the density /
// skew / support space, every kernel (with and without its applicable
// tuning patterns), the brute-force oracle, and the parallel miner (both
// worker counts, both merge modes) must produce the identical frequent
// itemset set. This is the strongest correctness net in the repository: the
// tuning patterns are pure performance transformations, so ANY divergence
// between configurations is a bug.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fpm/internal/fimi"
	"fpm/internal/mine"
)

// diffCase is one randomized corpus plus its mining support.
type diffCase struct {
	name   string
	db     *DB
	minsup int
	// parAlgo rotates which kernel the parallel runs exercise, so across
	// the suite all of lcm/eclat/fpgrowth go through the scheduler.
	parAlgo Algorithm
}

// diffCases derives n corpora from a fixed seed. Half are Quest-style
// (sparse, market-basket), half Zipf-topic corpora (dense head, clustered);
// density, skew and relative support vary per case.
func diffCases(n int) []diffCase {
	rng := rand.New(rand.NewSource(20260806))
	parAlgos := []Algorithm{LCM, Eclat, FPGrowth}
	cases := make([]diffCase, 0, n)
	for i := 0; i < n; i++ {
		var db *DB
		var kind string
		if i%2 == 0 {
			cfg := QuestConfig{
				Transactions:  150 + rng.Intn(250),
				AvgLen:        6 + rng.Intn(10),
				AvgPatternLen: 3 + rng.Intn(4),
				Items:         30 + rng.Intn(70),
				Patterns:      15 + rng.Intn(30),
				Seed:          rng.Int63(),
			}
			db = GenerateQuest(cfg)
			kind = "quest"
		} else {
			cfg := CorpusConfig{
				Docs:       150 + rng.Intn(250),
				Vocab:      40 + rng.Intn(80),
				AvgLen:     5 + 8*rng.Float64(),
				ZipfS:      1.1 + 0.8*rng.Float64(),
				Topics:     rng.Intn(7),
				TopicShare: 0.3 + 0.5*rng.Float64(),
				TopicPool:  20 + rng.Intn(30),
				Shuffle:    rng.Intn(2) == 0,
				Seed:       rng.Int63(),
			}
			db = GenerateCorpus(cfg)
			kind = "corpus"
		}
		// Relative support 3%–12%, absolute floor 2: low enough to grow a
		// real search tree, high enough to keep the oracle tractable.
		frac := 0.03 + 0.09*rng.Float64()
		minsup := int(frac * float64(db.Len()))
		if minsup < 2 {
			minsup = 2
		}
		cases = append(cases, diffCase{
			name:    fmt.Sprintf("%02d-%s-n%d-s%d", i, kind, db.Len(), minsup),
			db:      db,
			minsup:  minsup,
			parAlgo: parAlgos[i%len(parAlgos)],
		})
	}
	return cases
}

// mineSet runs m and returns the canonical itemset→support map.
func mineSet(t *testing.T, m Miner, db *DB, minsup int) ResultSet {
	t.Helper()
	rs := ResultSet{}
	if err := m.Mine(db, minsup, rs); err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return rs
}

// checkAgainst fails the test with a bounded diff when got diverges from
// the oracle.
func checkAgainst(t *testing.T, label string, want, got ResultSet) {
	t.Helper()
	if !got.Equal(want) {
		t.Errorf("%s diverges from oracle (%d vs %d itemsets):\n%s",
			label, len(got), len(want), want.Diff(got, 10))
	}
}

// partCases derives n corpora for the out-of-core equivalence net. They
// mirror diffCases' Quest/Zipf split but keep transactions short (average
// length 3–6): under the "many chunks" regime the SON scaled threshold can
// floor at 1 for a small chunk, and mining a chunk at support 1 enumerates
// every subset of every transaction — 2^len sets per transaction. Bounded
// lengths keep that worst case a few thousand candidates instead of
// billions, so the test exercises the threshold-1 regime without the
// exponential blowup (see DESIGN.md, "Choosing the memory budget").
func partCases(n int) []diffCase {
	rng := rand.New(rand.NewSource(20260807))
	cases := make([]diffCase, 0, n)
	for i := 0; i < n; i++ {
		var db *DB
		var kind string
		if i%2 == 0 {
			cfg := QuestConfig{
				Transactions:  150 + rng.Intn(250),
				AvgLen:        3 + rng.Intn(3),
				AvgPatternLen: 2 + rng.Intn(2),
				Items:         30 + rng.Intn(70),
				Patterns:      15 + rng.Intn(30),
				Seed:          rng.Int63(),
			}
			db = GenerateQuest(cfg)
			kind = "quest"
		} else {
			cfg := CorpusConfig{
				Docs:       150 + rng.Intn(250),
				Vocab:      40 + rng.Intn(80),
				AvgLen:     3 + 3*rng.Float64(),
				ZipfS:      1.1 + 0.8*rng.Float64(),
				Topics:     rng.Intn(7),
				TopicShare: 0.3 + 0.5*rng.Float64(),
				TopicPool:  20 + rng.Intn(30),
				Shuffle:    rng.Intn(2) == 0,
				Seed:       rng.Int63(),
			}
			db = GenerateCorpus(cfg)
			kind = "corpus"
		}
		frac := 0.03 + 0.09*rng.Float64()
		minsup := int(frac * float64(db.Len()))
		if minsup < 2 {
			minsup = 2
		}
		cases = append(cases, diffCase{
			name:   fmt.Sprintf("%02d-%s-n%d-s%d", i, kind, db.Len(), minsup),
			db:     db,
			minsup: minsup,
		})
	}
	return cases
}

// canonListing renders itemsets as the canonical (size, then lex) sorted
// FIMI-style listing, the CLI's output form. Comparing listings makes the
// partitioned-equivalence assertion literal: the two paths must be
// byte-identical, not merely set-equal.
func canonListing(sets []Itemset) string {
	ordered := append([]Itemset(nil), sets...)
	for i := 1; i < len(ordered); i++ {
		if !mine.LessItems(ordered[i-1].Items, ordered[i].Items) {
			// Non-canonical input (kernel enumeration order): sort.
			sortCanon(ordered)
			break
		}
	}
	var b strings.Builder
	for _, s := range ordered {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", it)
		}
		fmt.Fprintf(&b, " (%d)\n", s.Support)
	}
	return b.String()
}

func sortCanon(sets []Itemset) {
	sort.Slice(sets, func(a, b int) bool { return mine.LessItems(sets[a].Items, sets[b].Items) })
}

// TestDifferentialPartitionedEquivalence is the out-of-core acceptance
// net: every randomized corpus is written to a temp FIMI file and mined
// via MinePartitioned under three partitioning regimes — a budget that
// holds the whole file (1 chunk, where the SON scaled threshold equals
// minSupport exactly), one forcing a few chunks, and one forcing many —
// and the canonical listing must be byte-identical to the in-memory
// fpm.Mine answer for all four kernels. Workers alternate between 1
// (sequential chunk mining) and 4 (work-stealing pool per chunk) across
// cases; CI additionally runs this under -race -short.
func TestDifferentialPartitionedEquivalence(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	for i, tc := range partCases(n) {
		tc := tc
		workers := 1
		if i%2 == 1 {
			workers = 4
		}
		t.Run(fmt.Sprintf("%s-w%d", tc.name, workers), func(t *testing.T) {
			t.Parallel()
			path := filepath.Join(t.TempDir(), "db.dat")
			if err := WriteFIMIFile(path, tc.db); err != nil {
				t.Fatal(err)
			}
			est := fimi.DBBytes(tc.db)

			// Budgets are derived from the file's estimated resident
			// size; the resident chunk is capped at budget/8 (see
			// internal/partition), so budget 8(est+64) holds the whole
			// file in one chunk and 8·est/16 forces many chunks.
			regimes := []struct {
				name      string
				budget    int64
				minChunks uint64
			}{
				{"single", 8 * (est + 64), 1},
				{"few", 8 * est / 3, 2},
				{"many", 8 * est / 16, 4},
			}

			if probe, err := Mine(tc.db, LCM, 0, tc.minsup); err != nil {
				t.Fatal(err)
			} else if len(probe) > 50_000 {
				t.Skipf("%d itemsets; corpus too dense to cross-check every kernel cheaply", len(probe))
			}

			algos := []Algorithm{LCM, Eclat, FPGrowth, Apriori}
			for _, algo := range algos {
				inMem, err := Mine(tc.db, algo, Applicable(algo), tc.minsup)
				if err != nil {
					t.Fatal(err)
				}
				want := canonListing(inMem)
				for _, rg := range regimes {
					sets, snap, err := MinePartitioned(path, algo, Applicable(algo), tc.minsup,
						rg.budget, workers, ParallelCutoff(64))
					if err != nil {
						t.Fatalf("%s/%s: %v", algo, rg.name, err)
					}
					if rg.name == "single" && snap.Chunks != 1 {
						t.Errorf("%s/%s: %d chunks, want exactly 1", algo, rg.name, snap.Chunks)
					}
					if snap.Chunks < rg.minChunks {
						t.Errorf("%s/%s: %d chunks, want >= %d", algo, rg.name, snap.Chunks, rg.minChunks)
					}
					got := canonListing(sets)
					if got != want {
						t.Errorf("%s/%s/w%d: partitioned listing differs from in-memory (%d vs %d sets)",
							algo, rg.name, workers, len(sets), len(inMem))
					}
					// MinePartitioned promises canonical emission order:
					// the listing must already have been sorted.
					for k := 1; k < len(sets); k++ {
						if !mine.LessItems(sets[k-1].Items, sets[k].Items) {
							t.Fatalf("%s/%s: emission not canonical at %d", algo, rg.name, k)
						}
					}
				}
			}
		})
	}
}

func TestDifferentialAllMinersAgree(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 12
	}
	for _, tc := range diffCases(n) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want := mineSet(t, mine.BruteForce{}, tc.db, tc.minsup)
			if len(want) > 200_000 {
				t.Skipf("oracle produced %d itemsets; corpus too dense to cross-check cheaply", len(want))
			}

			// All four kernels, untuned and fully tuned: patterns are
			// performance-only transformations and must not change results.
			for _, algo := range []Algorithm{LCM, Eclat, FPGrowth} {
				for _, ps := range []PatternSet{0, Applicable(algo)} {
					m, err := NewMiner(algo, ps)
					if err != nil {
						t.Fatal(err)
					}
					checkAgainst(t, m.Name(), want, mineSet(t, m, tc.db, tc.minsup))
				}
			}
			checkAgainst(t, "hmine", want, mineSet(t, NewHMine(), tc.db, tc.minsup))

			// Parallel: sequential-equivalent (workers=1) and contended
			// (workers=4), with both merge modes on the contended pool.
			for _, pc := range []struct {
				workers int
				det     bool
			}{{1, false}, {4, false}, {4, true}} {
				opts := []ParallelOption{ParallelCutoff(64)}
				if pc.det {
					opts = append(opts, ParallelDeterministic())
				}
				pm, err := NewParallel(pc.workers, tc.parAlgo, Applicable(tc.parAlgo), opts...)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/w%d/det=%v", pm.Name(), pc.workers, pc.det)
				checkAgainst(t, label, want, mineSet(t, pm, tc.db, tc.minsup))
			}
		})
	}
}
