// Command fpmgen generates synthetic transaction databases in FIMI format:
// IBM Quest-style market-basket data (the paper's DS1/DS2) or Zipf-topic
// document corpora (the WebDocs/AP stand-ins, DS3/DS4).
//
// Usage:
//
//	fpmgen -kind quest -t 60 -i 10 -d 300000 -items 1000 -out ds1.dat
//	fpmgen -kind corpus -d 500000 -vocab 5000 -avglen 40 -topics 20 -out ds3.dat
//	fpmgen -kind table6 -scale 0.01 -outdir data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fpm"
)

func main() {
	var (
		kind   = flag.String("kind", "quest", "generator: quest, corpus or table6")
		name   = flag.String("name", "", "canonical Quest dataset name, e.g. T60I10D300K (overrides -t/-i/-d)")
		out    = flag.String("out", "", "output file (quest/corpus); required unless -kind table6")
		outdir = flag.String("outdir", ".", "output directory for -kind table6")
		seed   = flag.Int64("seed", 42, "generator seed")

		// Quest parameters (TxxIyyDzzz).
		t     = flag.Int("t", 10, "quest: average transaction length (T)")
		i     = flag.Int("i", 4, "quest: average pattern length (I)")
		d     = flag.Int("d", 10000, "transactions (D) / documents")
		items = flag.Int("items", 1000, "quest: alphabet size (N)")
		pats  = flag.Int("patterns", 2000, "quest: pattern pool size (L)")

		// Corpus parameters.
		vocab  = flag.Int("vocab", 10000, "corpus: vocabulary size")
		avglen = flag.Float64("avglen", 15, "corpus: mean document length")
		zipf   = flag.Float64("zipf", 1.2, "corpus: Zipf exponent")
		topics = flag.Int("topics", 0, "corpus: topic count (0 = no topic model)")
		share  = flag.Float64("share", 0.6, "corpus: fraction of terms drawn from the topic pool")
		shuf   = flag.Bool("shuffle", false, "corpus: shuffle document order")

		scale = flag.Float64("scale", 0.01, "table6: scale factor relative to the paper's sizes")
	)
	flag.Parse()

	switch *kind {
	case "quest":
		requireOut(*out)
		cfg := fpm.QuestConfig{
			Transactions: *d, AvgLen: *t, AvgPatternLen: *i,
			Items: *items, Patterns: *pats, Seed: *seed,
		}
		if *name != "" {
			parsed, err := fpm.ParseQuestName(*name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpmgen:", err)
				os.Exit(2)
			}
			parsed.Seed = *seed
			if parsed.Items == 0 {
				parsed.Items = *items
			}
			if parsed.Patterns == 0 {
				parsed.Patterns = *pats
			}
			cfg = parsed
		}
		write(*out, fpm.GenerateQuest(cfg))
	case "corpus":
		requireOut(*out)
		db := fpm.GenerateCorpus(fpm.CorpusConfig{
			Docs: *d, Vocab: *vocab, AvgLen: *avglen, ZipfS: *zipf,
			Topics: *topics, TopicShare: *share, Shuffle: *shuf, Seed: *seed,
		})
		write(*out, db)
	case "table6":
		for _, ds := range fpm.Table6Datasets(*scale, *seed) {
			path := filepath.Join(*outdir, ds.Name+".dat")
			write(path, ds.DB)
			fmt.Printf("%s -> %s (paper support at this scale: %d)\n", ds.Describe(), path, ds.Support)
		}
	default:
		fmt.Fprintf(os.Stderr, "fpmgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func requireOut(out string) {
	if out == "" {
		fmt.Fprintln(os.Stderr, "fpmgen: -out is required")
		os.Exit(2)
	}
}

func write(path string, db *fpm.DB) {
	if err := fpm.WriteFIMIFile(path, db); err != nil {
		fmt.Fprintln(os.Stderr, "fpmgen:", err)
		os.Exit(1)
	}
}
