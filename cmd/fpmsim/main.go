// Command fpmsim replays an instrumented mining kernel over a FIMI-format
// database on one of the simulated platforms and reports per-phase cycles,
// CPI and cache behaviour — the measurement path behind the paper's
// Figure 2 and Figure 8 reproductions, exposed for ad-hoc inputs.
//
// Usage:
//
//	fpmsim -in data.dat -support 100 -algo lcm -machine m1 \
//	       -patterns lex,aggregate,compact,tile,prefetch
//	fpmsim -in data.dat -support 100 -algo eclat -machine m2 -patterns simd -compare
//
// With -compare the baseline (no patterns) is run too and the speedup
// printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpm"
)

func main() {
	var (
		in       = flag.String("in", "", "input transaction file (FIMI format); required")
		algo     = flag.String("algo", "lcm", "kernel: lcm, eclat or fpgrowth")
		support  = flag.Int("support", 0, "absolute minimum support; required")
		machine  = flag.String("machine", "m1", "platform model: m1 (Pentium D 830) or m2 (Athlon 64 X2)")
		patterns = flag.String("patterns", "", "comma-separated tuning patterns (lex,adapt,aggregate,compact,prefetchptr,tile,prefetch,simd) or \"all\"")
		compare  = flag.Bool("compare", false, "also run the untuned baseline and print the speedup")
	)
	flag.Parse()
	if *in == "" || *support < 1 {
		flag.Usage()
		os.Exit(2)
	}

	db, err := fpm.ReadFIMIFile(*in)
	if err != nil {
		fatal(err)
	}
	var cfg fpm.MachineConfig
	switch strings.ToLower(*machine) {
	case "m1":
		cfg = fpm.M1()
	case "m2":
		cfg = fpm.M2()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}
	ps, err := parsePatterns(*patterns, fpm.Algorithm(*algo))
	if err != nil {
		fatal(err)
	}

	report, err := fpm.Simulate(fpm.Algorithm(*algo), db, *support, ps, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s with %v\n", report.Kernel, report.Machine, ps)
	for _, p := range report.Phases {
		fmt.Printf("  %-12s %14.0f cycles  %12d instr  CPI %5.2f  L1 miss %10d  L2 miss %9d  TLB miss %8d\n",
			p.Name, p.Cycles, p.Instructions, p.CPI(), p.L1Miss, p.L2Miss, p.TLBMiss)
	}
	fmt.Printf("  %-12s %14.0f cycles\n", "total", report.TotalCycles())

	if *compare && ps != 0 {
		base, err := fpm.Simulate(fpm.Algorithm(*algo), db, *support, 0, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("baseline: %.0f cycles -> speedup %.2fx\n",
			base.TotalCycles(), base.TotalCycles()/report.TotalCycles())
	}
}

func parsePatterns(s string, algo fpm.Algorithm) (fpm.PatternSet, error) {
	if s == "" {
		return 0, nil
	}
	if s == "all" {
		return fpm.Applicable(algo), nil
	}
	names := map[string]fpm.Pattern{
		"lex": fpm.Lex, "adapt": fpm.Adapt, "aggregate": fpm.Aggregate,
		"compact": fpm.Compact, "prefetchptr": fpm.PrefetchPtr,
		"tile": fpm.Tile, "prefetch": fpm.Prefetch, "simd": fpm.SIMD,
	}
	var ps fpm.PatternSet
	for _, name := range strings.Split(s, ",") {
		p, ok := names[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return 0, fmt.Errorf("unknown pattern %q", name)
		}
		ps = ps.With(p)
	}
	return ps, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpmsim:", err)
	os.Exit(1)
}
