// Command fpmexp regenerates the tables and figures of the paper's
// evaluation section on the simulated M1/M2 platforms (experiment index in
// DESIGN.md §4).
//
// Usage:
//
//	fpmexp -all                 # every artifact (EXPERIMENTS.md content)
//	fpmexp -table 2|3|4|5|6
//	fpmexp -fig 2|8
//	fpmexp -ablate              # the E9 design-choice sweeps
//	fpmexp -baseline            # native untuned kernel times per dataset
//	fpmexp -check               # machine-check the paper's claims
//	fpmexp -scale 0.01 -seed 42 # workload scale (1.0 = paper sizes)
package main

import (
	"flag"
	"fmt"
	"os"

	"fpm"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table    = flag.Int("table", 0, "print table 2, 3, 4, 5 or 6")
		fig      = flag.Int("fig", 0, "reproduce figure 2 or 8")
		ablate   = flag.Bool("ablate", false, "run the E9 ablation sweeps")
		check    = flag.Bool("check", false, "verify the paper's quantitative claims against the reproduction")
		baseline = flag.Bool("baseline", false, "measure native baseline kernel times per dataset")
		scale    = flag.Float64("scale", 0.004, "dataset scale factor (1.0 = the paper's sizes)")
		seed     = flag.Int64("seed", 42, "dataset generator seed")
		cols     = flag.Int("maxcols", 0, "cap on traced LCM occ columns (0 = default)")
		vecs     = flag.Int("maxvecs", 0, "cap on traced Eclat vectors (0 = default)")
	)
	flag.Parse()

	o := fpm.ExperimentOptions{Scale: *scale, Seed: *seed, MaxColumns: *cols, MaxVectors: *vecs}
	w := os.Stdout
	ran := false

	if *all || *table == 2 {
		fmt.Fprintln(w, "== Table 2: ALSO patterns and the properties they improve ==")
		fpm.PrintTable2(w)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *table == 3 {
		fmt.Fprintln(w, "== Table 3: characteristics of the studied kernels ==")
		fpm.PrintTable3(w)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *table == 4 {
		fmt.Fprintln(w, "== Table 4: optimization patterns applied per kernel ==")
		fpm.PrintTable4(w)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *table == 5 {
		fmt.Fprintln(w, "== Table 5: simulated platforms ==")
		fpm.PrintTable5(w)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *table == 6 {
		fmt.Fprintln(w, "== Table 6: evaluation datasets ==")
		fpm.PrintTable6(w, o)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *fig == 2 {
		fpm.PrintFigure2(w, o)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *fig == 8 {
		fpm.PrintFigure8(w, o)
		ran = true
	}
	if *all || *ablate {
		fpm.PrintAblations(w, o)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *baseline {
		fpm.PrintBaselineTimes(w, o)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *check {
		fpm.PrintShapeChecks(w, o)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
