// Command fpmload load-tests `fpm serve`: it drives the T1–T5 workload
// taxonomy (internal/loadgen) over real HTTP, records HDR-style latency
// summaries (p50/p95/p99/max), throughput and outcome counts, splits
// queue-wait from mine-time, and emits the results as machine-readable
// BENCH_serve.json — the serving layer's counterpart to
// BENCH_partition.json, so the service's performance trajectory is a
// tracked artifact. Each workload is gated against its latency SLO
// budget; a violation exits 1, which is the CI regression gate.
//
// Usage:
//
//	fpmload [-addr http://host:port] [-workloads T1,T3,T4] [-duration 10s]
//	        [-workers 4] [-qps 0] [-queue-cap 64] [-seed 1]
//	        [-out BENCH_serve.json] [-datadir DIR]
//	        [-slo-admit-p99-ms N] [-slo-e2e-p99-ms N] [-no-slo]
//
// With no -addr the driver self-hosts the production serve wiring
// (internal/serve) on a loopback port, so a bare `fpmload` measures this
// checkout end to end. SIGINT/SIGTERM drain gracefully mid-storm: arrivals
// stop, in-flight waits unwind, the partial report is still written, and
// the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpm/internal/loadgen"
	"fpm/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpmload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "", "target server base URL (e.g. http://localhost:9090); empty self-hosts the real serve wiring on a loopback port")
		workloads = fs.String("workloads", "T1,T2,T3,T4,T5", "comma-separated workload names from the taxonomy")
		duration  = fs.Duration("duration", 10*time.Second, "per-workload arrival window")
		workers   = fs.Int("workers", 4, "client concurrency per workload")
		qps       = fs.Float64("qps", 0, "arrival rate (open loop) or completion-rate cap (closed loop); 0 = workload default")
		queueCap  = fs.Int("queue-cap", 64, "self-hosted server's pending-job queue cap")
		seed      = fs.Int64("seed", 1, "deterministic request-stream seed")
		out       = fs.String("out", "BENCH_serve.json", "output JSON artifact path")
		datadir   = fs.String("datadir", "", "directory for generated datasets (default: a temp dir, removed on exit)")
		noSLO     = fs.Bool("no-slo", false, "record SLO verdicts but always exit 0")

		sloAdmit  = fs.Float64("slo-admit-p99-ms", 0, "override every workload's p99 queue-admission budget (ms); 0 keeps defaults")
		sloE2E    = fs.Float64("slo-e2e-p99-ms", 0, "override every workload's p99 end-to-end budget (ms); 0 keeps defaults")
		sloFail   = fs.Float64("slo-max-fail-rate", -1, "override the unexpected-failure-rate budget; negative keeps defaults")
		sloReject = fs.Float64("slo-max-reject-rate", -2, "override the 429-rejection-rate budget; -2 keeps defaults, -1 unbounded")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var specs []loadgen.Spec
	for _, name := range strings.Split(*workloads, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		spec, ok := loadgen.SpecByName(name)
		if !ok {
			fmt.Fprintf(stderr, "fpmload: unknown workload %q (taxonomy: T1..T5)\n", name)
			return 2
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		fmt.Fprintln(stderr, "fpmload: no workloads selected")
		return 2
	}

	// SIGINT/SIGTERM cancel the run context: arrivals stop, in-flight
	// polls unwind as "interrupted", and the partial report is written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dir := *datadir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "fpmload-")
		if err != nil {
			fmt.Fprintln(stderr, "fpmload:", err)
			return 2
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	world, err := loadgen.BuildWorld(dir, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "fpmload:", err)
		return 2
	}

	base := *addr
	serverLabel := base
	if base == "" {
		srv, store := serve.New(serve.Config{QueueCap: *queueCap})
		lnAddr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, "fpmload:", err)
			return 2
		}
		defer func() {
			store.Shutdown()
			shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(shctx)
		}()
		base = "http://" + lnAddr.String()
		serverLabel = "self-hosted"
		fmt.Fprintf(stderr, "fpmload: self-hosting fpm serve on %s (queue cap %d)\n", base, *queueCap)
	}
	client := loadgen.NewClient(base)

	rep := loadgen.NewReport(serverLabel, *seed)
	for _, spec := range specs {
		if ctx.Err() != nil {
			break
		}
		fmt.Fprintf(stderr, "fpmload: %s %s: %s loop, %v, %d workers\n", spec.Name, spec.Title, spec.Loop, *duration, *workers)
		cfg := loadgen.RunConfig{Duration: *duration, Workers: *workers, QPS: *qps, Seed: *seed}
		if s := overrideSLO(spec.SLO, *sloAdmit, *sloE2E, *sloFail, *sloReject); s != nil {
			cfg.SLO = s
		}
		res, err := loadgen.RunWorkload(ctx, client, world, spec, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "fpmload: %s: %v\n", spec.Name, err)
			return 2
		}
		rep.Add(res)
		fmt.Fprintf(stdout, "%-3s %-13s ops=%-5d done=%-5d cancel=%-4d reject=%-4d fail=%-3d err=%-3d  admit p99 %7.2fms  e2e p50/p99 %8.2f/%8.2fms  %6.1f done/s  %s\n",
			res.Workload, res.Title, res.Ops, res.Done, res.Cancelled+res.Deadline, res.Rejected, res.Failed, res.Errors,
			float64(res.Admit.P99NS)/1e6, float64(res.E2E.P50NS)/1e6, float64(res.E2E.P99NS)/1e6,
			res.Throughput, passStr(res.Pass))
	}

	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(stderr, "fpmload:", err)
		return 2
	}
	fmt.Fprintf(stderr, "fpmload: wrote %d workload results to %s\n", len(rep.Workloads), *out)

	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "fpmload: interrupted; drained gracefully")
		return 0 // a drain is a clean exit, not a gate verdict
	}
	if !rep.Pass {
		for _, v := range rep.Violations() {
			fmt.Fprintln(stderr, "fpmload: SLO violation:", v)
		}
		if *noSLO {
			fmt.Fprintln(stderr, "fpmload: -no-slo set; not gating")
			return 0
		}
		return 1
	}
	fmt.Fprintln(stderr, "fpmload: all SLO budgets met")
	return 0
}

// passStr renders a per-workload verdict.
func passStr(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

// overrideSLO applies the command-line budget overrides on top of a
// workload's defaults; nil when nothing was overridden.
func overrideSLO(base loadgen.SLO, admitMS, e2eMS, failRate, rejectRate float64) *loadgen.SLO {
	changed := false
	if admitMS > 0 {
		base.AdmitP99MS = admitMS
		changed = true
	}
	if e2eMS > 0 {
		base.E2EP99MS = e2eMS
		changed = true
	}
	if failRate >= 0 {
		base.MaxFailRate = failRate
		changed = true
	}
	if rejectRate >= -1 {
		base.MaxRejectRate = rejectRate
		changed = true
	}
	if !changed {
		return nil
	}
	return &base
}
