// Command fpmload load-tests `fpm serve`: it drives the T1–T6 workload
// taxonomy (internal/loadgen) over real HTTP, records HDR-style latency
// summaries (p50/p95/p99/max), throughput and outcome counts, splits
// queue-wait from mine-time, and emits the results as machine-readable
// BENCH_serve.json — the serving layer's counterpart to
// BENCH_partition.json, so the service's performance trajectory is a
// tracked artifact. Each workload is gated against its latency SLO
// budget; a violation exits 1, which is the CI regression gate.
//
// Usage:
//
//	fpmload [-addr http://host:port] [-workloads T1,T3,T4] [-duration 10s]
//	        [-workers 4] [-qps 0] [-queue-cap 64] [-seed 1]
//	        [-max-concurrent N] [-mem-budget-mb N]
//	        [-no-dataset-cache] [-no-result-cache] [-cache-compare]
//	        [-out BENCH_serve.json] [-datadir DIR]
//	        [-slo-admit-p99-ms N] [-slo-e2e-p99-ms N] [-no-slo]
//
// With no -addr the driver self-hosts the production serve wiring
// (internal/serve) on a loopback port, so a bare `fpmload` measures this
// checkout end to end — including the multi-runner scheduler and the
// dataset/result caches (-max-concurrent, -mem-budget-mb, -no-*-cache
// shape that instance). -cache-compare is the cache-effectiveness gate:
// it first runs T3 (hot-key) against a cache-disabled twin of the same
// instance, records it as "T3-nocache", then requires the cached T3's
// end-to-end p99 to come in strictly below the cache-off run — a
// regression there fails the report like any other SLO violation.
// SIGINT/SIGTERM drain gracefully mid-storm: arrivals stop, in-flight
// waits unwind, the partial report is still written, and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpm/internal/loadgen"
	"fpm/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpmload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "", "target server base URL (e.g. http://localhost:9090); empty self-hosts the real serve wiring on a loopback port")
		workloads = fs.String("workloads", "T1,T2,T3,T4,T5", "comma-separated workload names from the taxonomy")
		duration  = fs.Duration("duration", 10*time.Second, "per-workload arrival window")
		workers   = fs.Int("workers", 4, "client concurrency per workload")
		qps       = fs.Float64("qps", 0, "arrival rate (open loop) or completion-rate cap (closed loop); 0 = workload default")
		queueCap  = fs.Int("queue-cap", 64, "self-hosted server's pending-job queue cap")
		seed      = fs.Int64("seed", 1, "deterministic request-stream seed")
		out       = fs.String("out", "BENCH_serve.json", "output JSON artifact path")
		datadir   = fs.String("datadir", "", "directory for generated datasets (default: a temp dir, removed on exit)")
		noSLO     = fs.Bool("no-slo", false, "record SLO verdicts but always exit 0")

		scrapeFinal = fs.Bool("scrape-final", false, "after the run, scrape /metrics, embed the server's own e2e p50/p99 in the report, and cross-check its p99 against the loadgen-side recording (within the histogram's 1/32 relative error); a missing histogram family or a failed cross-check exits 1")

		maxConc        = fs.Int("max-concurrent", 4, "self-hosted server's job-runner pool size")
		memBudgetMB    = fs.Int64("mem-budget-mb", 0, "self-hosted server's global memory budget in MiB; 0 = unlimited")
		noDatasetCache = fs.Bool("no-dataset-cache", false, "disable the self-hosted server's shared dataset cache")
		noResultCache  = fs.Bool("no-result-cache", false, "disable the self-hosted server's result cache")
		stateDir       = fs.String("state-dir", "", "self-hosted server's durability directory (result-cache snapshots + job journal); empty = in-memory only")
		cacheCompare   = fs.Bool("cache-compare", false, "self-host only: run T3 against a cache-disabled twin first (recorded as T3-nocache) and require the cached T3 e2e p99 to beat it")

		sloAdmit  = fs.Float64("slo-admit-p99-ms", 0, "override every workload's p99 queue-admission budget (ms); 0 keeps defaults")
		sloE2E    = fs.Float64("slo-e2e-p99-ms", 0, "override every workload's p99 end-to-end budget (ms); 0 keeps defaults")
		sloFail   = fs.Float64("slo-max-fail-rate", -1, "override the unexpected-failure-rate budget; negative keeps defaults")
		sloReject = fs.Float64("slo-max-reject-rate", -2, "override the 429-rejection-rate budget; -2 keeps defaults, -1 unbounded")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var specs []loadgen.Spec
	for _, name := range strings.Split(*workloads, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		spec, ok := loadgen.SpecByName(name)
		if !ok {
			fmt.Fprintf(stderr, "fpmload: unknown workload %q (taxonomy: T1..T6)\n", name)
			return 2
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		fmt.Fprintln(stderr, "fpmload: no workloads selected")
		return 2
	}

	// SIGINT/SIGTERM cancel the run context: arrivals stop, in-flight
	// polls unwind as "interrupted", and the partial report is written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dir := *datadir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "fpmload-")
		if err != nil {
			fmt.Fprintln(stderr, "fpmload:", err)
			return 2
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	world, err := loadgen.BuildWorld(dir, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "fpmload:", err)
		return 2
	}

	hostCfg := serve.Config{
		QueueCap:            *queueCap,
		MaxConcurrent:       *maxConc,
		MemBudget:           *memBudgetMB << 20,
		DisableDatasetCache: *noDatasetCache,
		DisableResultCache:  *noResultCache,
		StateDir:            *stateDir,
	}
	base := *addr
	serverLabel := base
	if base == "" {
		hosted, shutdown, err := selfHost(hostCfg)
		if err != nil {
			fmt.Fprintln(stderr, "fpmload:", err)
			return 2
		}
		defer shutdown()
		base = hosted
		serverLabel = "self-hosted"
		fmt.Fprintf(stderr, "fpmload: self-hosting fpm serve on %s (queue cap %d, %d runners)\n", base, *queueCap, *maxConc)
	} else if *cacheCompare {
		fmt.Fprintln(stderr, "fpmload: -cache-compare requires self-hosting (omit -addr)")
		return 2
	}
	client := loadgen.NewClient(base)

	rep := loadgen.NewReport(serverLabel, *seed)

	// The cache-effectiveness baseline: the same T3 hot-key storm against a
	// twin instance with both caches off, recorded as "T3-nocache". The
	// cached T3 from the main loop must beat its e2e p99, or the report
	// fails — that comparison is the CI assertion that the caches earn
	// their keep on the workload they exist for.
	var nocacheP99 int64
	if *cacheCompare && ctx.Err() == nil {
		spec3, _ := loadgen.SpecByName("T3")
		if !hasSpec(specs, "T3") {
			specs = append(specs, spec3)
		}
		noCfg := hostCfg
		noCfg.DisableDatasetCache, noCfg.DisableResultCache = true, true
		noCfg.StateDir = "" // the twin must not share (or touch) the durable state
		noBase, noShutdown, err := selfHost(noCfg)
		if err != nil {
			fmt.Fprintln(stderr, "fpmload:", err)
			return 2
		}
		fmt.Fprintf(stderr, "fpmload: T3-nocache baseline: %s loop, %v, %d workers (caches disabled)\n", spec3.Loop, *duration, *workers)
		cfg := loadgen.RunConfig{Duration: *duration, Workers: *workers, QPS: *qps, Seed: *seed}
		if s := overrideSLO(spec3.SLO, *sloAdmit, *sloE2E, *sloFail, *sloReject); s != nil {
			cfg.SLO = s
		}
		res, err := loadgen.RunWorkload(ctx, loadgen.NewClient(noBase), world, spec3, cfg)
		noShutdown()
		if err != nil {
			fmt.Fprintf(stderr, "fpmload: T3-nocache: %v\n", err)
			return 2
		}
		res.Workload, res.Title = "T3-nocache", "hot-key-nocache"
		nocacheP99 = res.E2E.P99NS
		rep.Add(res)
		printSummary(stdout, res)
	}
	// srvE2E accumulates the loadgen-side view of the server's e2e
	// histogram across the main-loop workloads (the cache-compare baseline
	// runs against a twin instance whose metrics the final scrape cannot
	// see, so it stays out).
	var srvE2E loadgen.Hist
	for _, spec := range specs {
		if ctx.Err() != nil {
			break
		}
		fmt.Fprintf(stderr, "fpmload: %s %s: %s loop, %v, %d workers\n", spec.Name, spec.Title, spec.Loop, *duration, *workers)
		cfg := loadgen.RunConfig{Duration: *duration, Workers: *workers, QPS: *qps, Seed: *seed, ServerE2E: &srvE2E}
		if s := overrideSLO(spec.SLO, *sloAdmit, *sloE2E, *sloFail, *sloReject); s != nil {
			cfg.SLO = s
		}
		res, err := loadgen.RunWorkload(ctx, client, world, spec, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "fpmload: %s: %v\n", spec.Name, err)
			return 2
		}
		rep.Add(res)
		printSummary(stdout, res)
	}

	// The cache-effectiveness verdict: cached T3 must beat the cache-off
	// baseline's e2e p99. Appended as a violation on the cached T3 result
	// so it gates the exit code and lands in the artifact like any other
	// budget breach.
	if *cacheCompare && ctx.Err() == nil && nocacheP99 > 0 {
		for i := range rep.Workloads {
			res := &rep.Workloads[i]
			if res.Workload != "T3" {
				continue
			}
			if res.E2E.P99NS >= nocacheP99 {
				v := loadgen.Violation{
					Workload: "T3",
					Budget:   "cache_effectiveness_e2e_p99_ms",
					Limit:    float64(nocacheP99) / 1e6,
					Actual:   float64(res.E2E.P99NS) / 1e6,
					Detail:   "cached hot-key p99 must come in strictly below the cache-disabled baseline (T3-nocache)",
				}
				res.Violations = append(res.Violations, v)
				res.Pass = false
				rep.Pass = false
			} else {
				fmt.Fprintf(stderr, "fpmload: cache effectiveness: T3 e2e p99 %.2fms vs nocache %.2fms (%.1fx)\n",
					float64(res.E2E.P99NS)/1e6, float64(nocacheP99)/1e6,
					float64(nocacheP99)/float64(res.E2E.P99NS))
			}
		}
	}

	// The observability consistency gate: the server's own histogram view
	// of the run must exist and (self-hosted, when every terminal job was
	// observed by both sides) its e2e p99 must agree with the loadgen-side
	// recording to within the HDR histogram's 1/32 relative error.
	if *scrapeFinal && ctx.Err() == nil {
		sf := finalScrape(ctx, client, &srvE2E, serverLabel == "self-hosted")
		rep.ScrapeFinal = &sf
		if sf.Checked {
			fmt.Fprintf(stderr, "fpmload: scrape-final: server e2e p50/p99 %.2f/%.2fms over %d jobs; p99 cross-check rel err %.4f\n",
				sf.E2EP50MS, sf.E2EP99MS, sf.E2ECount, sf.RelErr)
		} else if sf.Pass {
			fmt.Fprintf(stderr, "fpmload: scrape-final: server e2e p50/p99 %.2f/%.2fms over %d jobs (cross-check skipped: loadgen observed %d)\n",
				sf.E2EP50MS, sf.E2EP99MS, sf.E2ECount, sf.LoadgenCount)
		}
	}

	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(stderr, "fpmload:", err)
		return 2
	}
	fmt.Fprintf(stderr, "fpmload: wrote %d workload results to %s\n", len(rep.Workloads), *out)

	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "fpmload: interrupted; drained gracefully")
		return 0 // a drain is a clean exit, not a gate verdict
	}
	if rep.ScrapeFinal != nil && !rep.ScrapeFinal.Pass {
		// Broken telemetry is a hard failure regardless of -no-slo: the
		// metrics endpoint disagreeing with ground truth poisons every
		// dashboard built on it.
		fmt.Fprintln(stderr, "fpmload: scrape-final:", rep.ScrapeFinal.Detail)
		return 1
	}
	if !rep.Pass {
		for _, v := range rep.Violations() {
			fmt.Fprintln(stderr, "fpmload: SLO violation:", v)
		}
		if *noSLO {
			fmt.Fprintln(stderr, "fpmload: -no-slo set; not gating")
			return 0
		}
		return 1
	}
	fmt.Fprintln(stderr, "fpmload: all SLO budgets met")
	return 0
}

// selfHost starts the production serve wiring on a loopback port and
// returns its base URL plus a shutdown func (drain the store, flush the
// durable state if -state-dir is set, then stop the HTTP listener).
func selfHost(cfg serve.Config) (string, func(), error) {
	inst := serve.NewInstance(cfg)
	if inst.DurabilityErr != nil {
		return "", nil, inst.DurabilityErr
	}
	lnAddr, err := inst.Server.Start("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	shutdown := func() {
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = inst.Close(shctx)
	}
	return "http://" + lnAddr.String(), shutdown, nil
}

// finalScrape pulls /metrics after the run, extracts the server's e2e
// histogram summary, and — when self-hosting observed every terminal job
// (counts match) — cross-checks the server's full-resolution p99 gauge
// against the loadgen-side server_e2e recording. Both sides record the
// identical int64 (job Finished − Submitted) into the same HDR geometry,
// so agreement within 1/32 relative error is a hard invariant, not a
// statistical hope.
func finalScrape(ctx context.Context, c *loadgen.Client, h *loadgen.Hist, selfHosted bool) loadgen.ScrapeFinal {
	sf := loadgen.ScrapeFinal{
		LoadgenCount: int64(h.Count()),
		LoadgenP99MS: float64(h.Quantile(0.99)) / 1e6,
	}
	text, err := c.MetricsText(ctx)
	if err != nil {
		sf.Detail = "scrape failed: " + err.Error()
		return sf
	}
	if !strings.Contains(text, "fpm_job_e2e_seconds_bucket{") {
		sf.Detail = "fpm_job_e2e_seconds histogram missing from /metrics"
		return sf
	}
	m := loadgen.ParsePrometheus(text)
	sf.E2EP50MS = m["fpm_job_e2e_seconds_p50_seconds"] * 1e3
	sf.E2EP99MS = m["fpm_job_e2e_seconds_p99_seconds"] * 1e3
	sf.E2ECount = int64(m["fpm_job_e2e_seconds_count"])
	sf.Pass = true
	if selfHosted && sf.LoadgenCount > 0 && sf.E2ECount == sf.LoadgenCount && sf.LoadgenP99MS > 0 {
		sf.Checked = true
		sf.RelErr = math.Abs(sf.E2EP99MS-sf.LoadgenP99MS) / sf.LoadgenP99MS
		if sf.RelErr > 1.0/32 {
			sf.Pass = false
			sf.Detail = fmt.Sprintf("server e2e p99 %.3fms disagrees with loadgen-side %.3fms (rel err %.4f > 1/32 over %d jobs)",
				sf.E2EP99MS, sf.LoadgenP99MS, sf.RelErr, sf.E2ECount)
		}
	}
	return sf
}

func hasSpec(specs []loadgen.Spec, name string) bool {
	for _, s := range specs {
		if s.Name == name {
			return true
		}
	}
	return false
}

// printSummary renders one workload's stdout line.
func printSummary(w io.Writer, res loadgen.WorkloadResult) {
	fmt.Fprintf(w, "%-10s %-15s ops=%-5d done=%-5d cached=%-4d cancel=%-4d reject=%-4d fail=%-3d err=%-3d  admit p99 %7.2fms  e2e p50/p99 %8.2f/%8.2fms  %6.1f done/s  %s\n",
		res.Workload, res.Title, res.Ops, res.Done, res.CacheServed, res.Cancelled+res.Deadline, res.Rejected, res.Failed, res.Errors,
		float64(res.Admit.P99NS)/1e6, float64(res.E2E.P50NS)/1e6, float64(res.E2E.P99NS)/1e6,
		res.Throughput, passStr(res.Pass))
}

// passStr renders a per-workload verdict.
func passStr(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

// overrideSLO applies the command-line budget overrides on top of a
// workload's defaults; nil when nothing was overridden.
func overrideSLO(base loadgen.SLO, admitMS, e2eMS, failRate, rejectRate float64) *loadgen.SLO {
	changed := false
	if admitMS > 0 {
		base.AdmitP99MS = admitMS
		changed = true
	}
	if e2eMS > 0 {
		base.E2EP99MS = e2eMS
		changed = true
	}
	if failRate >= 0 {
		base.MaxFailRate = failRate
		changed = true
	}
	if rejectRate >= -1 {
		base.MaxRejectRate = rejectRate
		changed = true
	}
	if !changed {
		return nil
	}
	return &base
}
