package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpm/internal/loadgen"
)

// TestRunProducesArtifact drives the whole binary path — self-hosted
// server, a short T1+T4 run, SLO gate — and validates the emitted
// BENCH_serve.json round-trips through the report schema with the
// percentile fields populated per workload.
func TestRunProducesArtifact(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-workloads", "T1,T4",
		"-duration", "700ms",
		"-workers", "2",
		"-out", out,
		"-datadir", filepath.Join(dir, "data"),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact does not round-trip: %v\n%s", err, raw)
	}
	if rep.Tool != "cmd/fpmload" || rep.Server != "self-hosted" || !rep.Pass {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Workloads) != 2 {
		t.Fatalf("got %d workload results, want 2", len(rep.Workloads))
	}
	for _, w := range rep.Workloads {
		if w.Ops == 0 {
			t.Fatalf("%s recorded no ops", w.Workload)
		}
		if w.E2E.P50NS <= 0 || w.E2E.P99NS < w.E2E.P50NS || w.E2E.MaxNS < w.E2E.P99NS {
			t.Fatalf("%s percentiles not ordered: %+v", w.Workload, w.E2E)
		}
		if !w.Pass {
			t.Fatalf("%s failed default SLO on a clean tree: %+v", w.Workload, w.Violations)
		}
	}
	if rep.Workloads[1].Cancelled+rep.Workloads[1].Deadline == 0 {
		t.Fatalf("T4 cancelled nothing: %+v", rep.Workloads[1])
	}
}

// TestRunScrapeFinal: -scrape-final embeds the server's own histogram
// view in the artifact and the p99 cross-check against the loadgen-side
// recording holds — both sides fold the identical job timestamps into the
// same HDR geometry, so on a self-hosted run where every terminal job was
// observed the quantiles must agree within the histogram's 1/32 bound.
func TestRunScrapeFinal(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "scrape.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-workloads", "T1,T4",
		"-duration", "700ms",
		"-workers", "2",
		"-scrape-final",
		"-out", out,
		"-datadir", filepath.Join(dir, "data"),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d\nstderr:\n%s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	sf := rep.ScrapeFinal
	if sf == nil {
		t.Fatalf("report has no scrape_final section:\n%s", raw)
	}
	if !sf.Pass {
		t.Fatalf("scrape-final failed: %s", sf.Detail)
	}
	if sf.E2ECount <= 0 || sf.E2EP99MS <= 0 || sf.E2EP99MS < sf.E2EP50MS {
		t.Fatalf("server-side histogram summary implausible: %+v", sf)
	}
	if !sf.Checked {
		t.Fatalf("cross-check did not run (server %d jobs vs loadgen %d): %+v", sf.E2ECount, sf.LoadgenCount, sf)
	}
	if sf.RelErr > 1.0/32 {
		t.Fatalf("p99 cross-check rel err %.4f > 1/32: %+v", sf.RelErr, sf)
	}
	for _, w := range rep.Workloads {
		if w.Done > 0 && w.ServerE2E.Count == 0 {
			t.Fatalf("%s recorded no server_e2e samples: %+v", w.Workload, w.ServerE2E)
		}
	}
}

// TestRunRejectsUnknownWorkload: usage errors exit 2 before any server
// starts.
func TestRunRejectsUnknownWorkload(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workloads", "T9"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown workload exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown workload") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestRunGateFailsWhenTightened: the CI must-fail check, in-process — an
// unmeetable admission budget exits 1 and records the violation in the
// artifact.
func TestRunGateFailsWhenTightened(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tight.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-workloads", "T1",
		"-duration", "500ms",
		"-workers", "2",
		"-slo-admit-p99-ms", "0.000001",
		"-out", out,
		"-datadir", filepath.Join(dir, "data"),
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("tightened gate exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "SLO violation") {
		t.Fatalf("stderr missing violation report:\n%s", stderr.String())
	}
	var rep loadgen.Report
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Pass || len(rep.Violations()) == 0 {
		t.Fatalf("artifact must record the failed gate: %+v", rep)
	}
}
