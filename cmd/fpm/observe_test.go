package main

// Tests for the CLI observability surface: the -trace golden (timing
// normalized the same way the -stats goldens are), the -telemetry-addr
// live endpoints, and the `fpm serve` job API driven through its handler.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"fpm"
	"fpm/internal/telemetry"
)

// normEvent is one trace event with its nondeterministic fields zeroed;
// field order fixes the serialized form for golden comparison.
type normEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// normalizeTrace rewrites a Chrome trace-event file into a deterministic
// golden form: counter samples are dropped (their count depends on run
// duration), timestamps and durations are zeroed (wall-clock), and events
// are re-marshaled one per line with a fixed field order.
func normalizeTrace(t *testing.T, raw []byte) string {
	t.Helper()
	var doc struct {
		TraceEvents []normEvent    `json:"traceEvents"`
		DisplayUnit string         `json:"displayTimeUnit"`
		OtherData   map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v\n%s", err, raw)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "displayTimeUnit %s\n", doc.DisplayUnit)
	meta, err := json.Marshal(doc.OtherData)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "otherData %s\n", meta)
	for _, e := range doc.TraceEvents {
		if e.Ph == "C" {
			continue
		}
		e.Ts = 0
		if e.Dur != nil {
			z := 0.0
			e.Dur = &z
		}
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGoldenTrace pins the -trace output for a sequential run: the track
// metadata and the kernel's first-level subtree spans are deterministic
// once timings are normalized (like the -stats goldens).
func TestGoldenTrace(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"),
		"-support", "2", "-algo", "lcm", "-workers", "1", "-count",
		"-trace", traceFile)
	if strings.TrimSpace(out) != "9" {
		t.Fatalf("-count with -trace = %q, want 9", out)
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace-lcm.txt", normalizeTrace(t, raw))
}

// TestGoldenTracePartitionedParallel sanity-checks (not golden: scheduler
// spans are nondeterministic) that an out-of-core parallel -trace carries
// the partition track and one track per worker.
func TestTracePartitionedParallelCLI(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	runCLI(t, "-in", filepath.Join("testdata", "small.dat"),
		"-support", "2", "-algo", "eclat", "-partition", "-mem-budget", "1K",
		"-workers", "2", "-count", "-trace", traceFile)
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []normEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	tracks := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			tracks[e.Args["name"].(string)] = true
		}
	}
	for _, want := range []string{"partition", "worker 0", "worker 1"} {
		if !tracks[want] {
			t.Errorf("trace missing track %q (saw %v)", want, tracks)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: run() writes stderr from
// another goroutine while the test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestCLITelemetryAddr scrapes a live `fpm -telemetry-addr` run. The input
// is a FIFO, so the CLI blocks with its telemetry server up until the test
// has scraped every endpoint, deterministically — no sleep-and-hope.
func TestCLITelemetryAddr(t *testing.T) {
	fifo := filepath.Join(t.TempDir(), "in.fifo")
	if err := syscall.Mkfifo(fifo, 0o600); err != nil {
		t.Skipf("mkfifo unavailable: %v", err)
	}

	var stdout bytes.Buffer
	var stderr syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-in", fifo, "-support", "2", "-algo", "lcm",
			"-count", "-telemetry-addr", "127.0.0.1:0"}, &stdout, &stderr)
	}()

	// The CLI prints the bound address before opening the input.
	var base string
	deadline := time.After(10 * time.Second)
	for base == "" {
		if s := stderr.String(); strings.Contains(s, "telemetry listening on ") {
			line := s[strings.Index(s, "http://"):]
			base = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before serving telemetry: %v\nstderr: %s", err, stderr.String())
		case <-deadline:
			t.Fatalf("no telemetry address announced\nstderr: %s", stderr.String())
		case <-time.After(time.Millisecond):
		}
	}

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, _ := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body, ct := get("/metrics")
	if code != http.StatusOK || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics = %d, Content-Type %q", code, ct)
	}
	if !strings.Contains(body, "fpm_running 0") || !strings.Contains(body, "fpm_itemsets_emitted_total") {
		t.Fatalf("/metrics body unexpected:\n%s", body)
	}
	code, body, _ = get("/progress")
	var prog telemetry.Progress
	if code != http.StatusOK {
		t.Fatalf("/progress = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if code, _, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}

	// Feed the input; the run completes and tears the server down.
	data, err := os.ReadFile(filepath.Join("testdata", "small.dat"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := os.OpenFile(fifo, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := <-done; err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "9" {
		t.Fatalf("count = %q, want 9", got)
	}
}

// TestServeJobAPI drives the `fpm serve` wiring through its handler: a
// real mining job on testdata/small.dat runs to completion and its result
// matches the known count; invalid jobs fail with a recorded error.
func TestServeJobAPI(t *testing.T) {
	srv, store := newServeServer()
	defer store.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := func(body string) telemetry.Job {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, b)
		}
		var j telemetry.Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		return j
	}
	wait := func(id int) telemetry.Job {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for {
			resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, id))
			if err != nil {
				t.Fatal(err)
			}
			var j telemetry.Job
			if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if j.State == "done" || j.State == "failed" {
				return j
			}
			select {
			case <-deadline:
				t.Fatalf("job %d stuck in state %q", id, j.State)
			case <-time.After(time.Millisecond):
			}
		}
	}

	small := filepath.Join("testdata", "small.dat")
	ok := submit(fmt.Sprintf(`{"path":%q,"algo":"lcm","min_support":2}`, small))
	part := submit(fmt.Sprintf(`{"path":%q,"algo":"eclat","min_support":2,"mem_budget":1024,"workers":2}`, small))
	badSupport := submit(fmt.Sprintf(`{"path":%q,"algo":"lcm"}`, small))
	badPath := submit(`{"path":"does-not-exist.dat","algo":"lcm","min_support":2}`)

	if j := wait(ok.ID); j.State != "done" || j.Itemsets != 9 {
		t.Fatalf("in-memory job = %+v, want done with 9 itemsets", j)
	} else if j.Stats == nil || j.Stats.Emitted != 9 || j.Stats.Kernel == "" {
		t.Fatalf("in-memory job stats = %+v", j.Stats)
	}
	if j := wait(part.ID); j.State != "done" || j.Itemsets != 9 {
		t.Fatalf("partitioned job = %+v, want done with 9 itemsets", j)
	} else if j.Stats == nil || j.Stats.Partition == nil || j.Stats.Partition.Chunks < 2 {
		t.Fatalf("partitioned job stats missing partition section: %+v", j.Stats)
	}
	if j := wait(badSupport.ID); j.State != "failed" || !strings.Contains(j.Error, "min_support") {
		t.Fatalf("zero-support job = %+v, want failed", j)
	}
	if j := wait(badPath.ID); j.State != "failed" {
		t.Fatalf("missing-file job = %+v, want failed", j)
	}
}

// TestServeJobTimeoutAndCancel drives the robustness surface of `fpm
// serve` end to end with the real miner: a job with a tiny timeout_ms is
// cancelled by its deadline mid-mine, and a running job dies promptly on
// DELETE /jobs/{id} — both through the context plumbing the kernels poll.
func TestServeJobTimeoutAndCancel(t *testing.T) {
	srv, store := newServeServer()
	defer store.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A corpus heavy enough that mining it at support 2 far outlives both
	// the deadline and the DELETE below.
	heavy := filepath.Join(t.TempDir(), "heavy.dat")
	db := fpm.GenerateCorpus(fpm.CorpusConfig{
		Docs: 4000, Vocab: 1500, AvgLen: 20, ZipfS: 1.3,
		Topics: 6, TopicShare: 0.7, TopicPool: 40, Seed: 33,
	})
	if err := fpm.WriteFIMIFile(heavy, db); err != nil {
		t.Fatal(err)
	}

	submit := func(body string) telemetry.Job {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var j telemetry.Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		return j
	}
	get := func(id int) telemetry.Job {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var j telemetry.Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		return j
	}
	waitFinal := func(id int) telemetry.Job {
		t.Helper()
		deadline := time.After(60 * time.Second)
		for {
			j := get(id)
			switch j.State {
			case "done", "failed", "cancelled":
				return j
			}
			select {
			case <-deadline:
				t.Fatalf("job %d stuck in state %q", id, j.State)
			case <-time.After(time.Millisecond):
			}
		}
	}

	timed := submit(fmt.Sprintf(`{"path":%q,"algo":"lcm","min_support":2,"timeout_ms":50}`, heavy))
	if j := waitFinal(timed.ID); j.State != "failed" || !strings.Contains(j.Error, "deadline") {
		t.Fatalf("timed-out job = %+v, want failed with deadline error", j)
	}

	victim := submit(fmt.Sprintf(`{"path":%q,"algo":"lcm","min_support":2}`, heavy))
	for get(victim.ID).State != "running" {
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, victim.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /jobs/%d = %d", victim.ID, resp.StatusCode)
	}
	t0 := time.Now()
	if j := waitFinal(victim.ID); j.State != "cancelled" {
		t.Fatalf("deleted job = %+v, want cancelled", j)
	}
	if lat := time.Since(t0); lat > 5*time.Second {
		t.Fatalf("cancellation took %v", lat)
	}
}
