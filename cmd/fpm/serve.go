// The `fpm serve` subcommand: a long-lived mining server. Jobs are
// submitted over HTTP and mined one at a time; the telemetry endpoints
// (/metrics, /progress) follow whichever run is in flight, so a dashboard
// or `curl` loop can watch a long partitioned mine progress. Jobs may
// carry a per-job timeout and can be cancelled mid-run with DELETE.
//
//	fpm serve -addr localhost:9090
//	curl -X POST -d '{"path":"tx.dat","algo":"lcm","min_support":100,"timeout_ms":60000}' http://localhost:9090/jobs
//	curl http://localhost:9090/progress
//	curl -X DELETE http://localhost:9090/jobs/0
//
// SIGINT/SIGTERM shut the server down gracefully: the job in flight is
// cancelled cooperatively, queued jobs are marked cancelled, in-flight
// HTTP responses drain, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpm"
	"fpm/internal/telemetry"
)

// runServe runs the job-serving mode until interrupted.
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fpm serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:9090", "HTTP listen address")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	srv, store := newServeServer()
	lnAddr, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "fpm: serving on http://%s (POST /jobs; GET /jobs, /metrics, /progress, /healthz, /debug/pprof; DELETE /jobs/{id})\n", lnAddr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	fmt.Fprintln(stderr, "fpm: shutting down: cancelling job in flight, draining connections")
	store.Shutdown() // cancels the running job and joins the runner
	ctx, cancelFn := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelFn()
	return srv.Shutdown(ctx)
}

// newServeServer wires the job store and the real mining function into a
// telemetry server; split from runServe so tests can drive the handler
// without a listener or signals.
func newServeServer() (*telemetry.Server, *telemetry.Store) {
	srv := telemetry.NewServer()
	store := telemetry.NewStore(mineJob, srv.SetRecorder)
	srv.AttachJobs(store)
	return srv, store
}

// mineJob executes one submitted job through the library's observed
// mining paths, so the job's counters stream into rec while it runs. ctx
// threads the job's cancellation and deadline into the run: both the
// in-memory and partitioned paths unwind cooperatively when it trips.
func mineJob(ctx context.Context, req telemetry.JobRequest, rec *fpm.MetricsRecorder) (int, error) {
	if req.MinSupport < 1 {
		return 0, fmt.Errorf("job: min_support must be >= 1 (got %d)", req.MinSupport)
	}
	a := fpm.Algorithm(req.Algo)
	var ps fpm.PatternSet
	if req.Patterns == "" || req.Patterns == "all" {
		ps = fpm.Applicable(a)
	} else if req.Patterns != "none" {
		var err error
		if ps, err = parsePatterns(req.Patterns, a); err != nil {
			return 0, err
		}
	}
	opts := []fpm.ParallelOption{fpm.ParallelMetrics(rec), fpm.WithContext(ctx)}
	if req.MemBudget > 0 {
		sets, _, err := fpm.MinePartitioned(req.Path, a, ps, req.MinSupport, req.MemBudget, req.Workers, opts...)
		return len(sets), err
	}
	db, err := fpm.ReadFIMIFile(req.Path)
	if err != nil {
		return 0, err
	}
	sets, _, err := fpm.WithMetrics(db, a, ps, req.MinSupport, req.Workers, opts...)
	return len(sets), err
}
