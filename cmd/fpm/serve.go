// The `fpm serve` subcommand: a long-lived multi-tenant mining server.
// Jobs are submitted over HTTP and mined on a pool of -max-concurrent
// runners under -mem-budget admission control (a job whose estimated
// footprint does not fit waits in queue instead of OOMing the process).
// Repeated jobs are cheap: parsed datasets are shared through a
// ref-counted cache, and answers are served from a result cache that also
// subsumes higher support thresholds. The telemetry endpoints (/metrics,
// /progress) follow whichever run started most recently, so a dashboard
// or `curl` loop can watch a long partitioned mine progress. Jobs may
// carry a per-job timeout and can be cancelled mid-run with DELETE. The
// pending queue is bounded: submissions beyond -queue-cap get HTTP 429.
//
// Every job carries a bounded flight recorder — a structured event
// timeline (submitted, admission holds, cache outcomes, mine start/end,
// terminal) served at GET /jobs/{id}/events and, with -log-json,
// streamed to stdout as NDJSON while the server runs.
//
//	fpm serve -addr localhost:9090 -queue-cap 64 -max-concurrent 4 -mem-budget 2G
//	curl -X POST -d '{"path":"tx.dat","algo":"lcm","min_support":100,"timeout_ms":60000}' http://localhost:9090/jobs
//	curl http://localhost:9090/progress
//	curl http://localhost:9090/jobs/0/events
//	curl -X DELETE http://localhost:9090/jobs/0
//
// With -cache-persist DIR the server is durable: the result cache is
// snapshotted into DIR (atomic, CRC-checked — a restart pre-warms it, so
// a hot key is hot again even after kill -9) and every job state
// transition is journaled there, so a restarted server requeues the jobs
// a crash left queued or running (marked recovered:true). Transient mine
// failures are retried with capped exponential backoff (-max-retries).
//
// SIGINT/SIGTERM shut the server down gracefully: the job in flight is
// cancelled cooperatively, queued jobs are marked cancelled (or, with
// -cache-persist, journaled as requeue-on-restart so the next boot picks
// them up), in-flight HTTP responses drain, and the process exits 0.
//
// The wiring (real miner into the telemetry job store) lives in
// internal/serve so the load harness (cmd/fpmload) can host an identical
// server in-process.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"fpm/internal/serve"
	"fpm/internal/servecache"
	"fpm/internal/telemetry"
)

// runServe runs the job-serving mode until interrupted.
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fpm serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:9090", "HTTP listen address")
	queueCap := fs.Int("queue-cap", telemetry.DefaultQueueCap, "max pending jobs before POST /jobs returns 429")
	maxConc := fs.Int("max-concurrent", runtime.GOMAXPROCS(0), "concurrent job runners")
	memBudget := fs.String("mem-budget", "0", "global memory budget for admission control, e.g. 2G (0 = unlimited)")
	dsCache := fs.String("dataset-cache", "", "dataset cache cap, e.g. 256M; 0 disables, empty = default")
	resCache := fs.String("result-cache", "", "result cache cap, e.g. 64M; 0 disables, empty = default")
	logJSON := fs.Bool("log-json", false, "stream every job's flight-recorder events to stdout as NDJSON (one JSON event per line)")
	cachePersist := fs.String("cache-persist", "", "state directory for durability: result-cache snapshots + job journal; restart pre-warms the cache and requeues lost jobs (empty = in-memory only)")
	persistInterval := fs.Duration("persist-interval", 0, "result-cache snapshot cadence (0 = default 2s); needs -cache-persist")
	maxRetries := fs.Int("max-retries", serve.DefaultMaxRetries, "transparent retries (with capped exponential backoff) of a transiently failed mine attempt; 0 disables")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	var budgetBytes int64
	if *memBudget != "" && *memBudget != "0" {
		var err error
		budgetBytes, err = parseBytes(*memBudget)
		if err != nil {
			fmt.Fprintf(stderr, "fpm serve: bad -mem-budget: %v\n", err)
			return errUsage
		}
	}
	cfg := serve.Config{QueueCap: *queueCap, MaxConcurrent: *maxConc, MemBudget: budgetBytes,
		StateDir: *cachePersist, PersistInterval: *persistInterval}
	if *maxRetries <= 0 {
		cfg.MaxRetries = -1 // 0 on the flag means "no retries", not "default"
	} else {
		cfg.MaxRetries = *maxRetries
	}
	if *logJSON {
		cfg.EventLog = stdout
	}
	if *dsCache != "" {
		n, err := parseBytes(*dsCache)
		if err != nil {
			fmt.Fprintf(stderr, "fpm serve: bad -dataset-cache: %v\n", err)
			return errUsage
		}
		if n == 0 {
			cfg.DisableDatasetCache = true
		} else {
			cfg.DatasetCacheBytes = n
		}
	}
	if *resCache != "" {
		n, err := parseBytes(*resCache)
		if err != nil {
			fmt.Fprintf(stderr, "fpm serve: bad -result-cache: %v\n", err)
			return errUsage
		}
		if n == 0 {
			cfg.DisableResultCache = true
		} else {
			cfg.ResultCacheBytes = n
		}
	}
	inst := serve.NewInstance(cfg)
	if inst.DurabilityErr != nil {
		// The operator asked for durability and cannot have it; failing
		// fast beats silently serving without a safety net.
		fmt.Fprintf(stderr, "fpm serve: %v\n", inst.DurabilityErr)
		return inst.DurabilityErr
	}
	lnAddr, err := inst.Server.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "fpm: serving on http://%s (POST /jobs; GET /jobs, /jobs/{id}/events, /metrics, /progress, /healthz, /debug/pprof; DELETE /jobs/{id})\n", lnAddr)
	if *cachePersist != "" {
		var ps servecache.PersistStats
		if inst.Persister != nil {
			ps = inst.Persister.Stats()
		}
		fmt.Fprintf(stderr, "fpm: durable state in %s: restored %d cached listing(s) (dropped %d stale, %d unreadable), requeued %d job(s) from the journal\n",
			*cachePersist, ps.Restored, ps.DroppedStale, ps.DroppedUnreadable, len(inst.Recovered))
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	fmt.Fprintln(stderr, "fpm: shutting down: cancelling jobs in flight, draining connections")
	ctx, cancelFn := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelFn()
	// Close drains the store (journaling queued jobs as requeue-on-restart
	// when -cache-persist is set), flushes the final cache snapshot,
	// closes the journal, then drains HTTP.
	return inst.Close(ctx)
}

// newServeServer wires the job store and the real mining function into a
// telemetry server; kept for the serve-API tests, which drive the handler
// without a listener or signals.
func newServeServer() (*telemetry.Server, *telemetry.Store) {
	return serve.New(serve.Config{})
}
