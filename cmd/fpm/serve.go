// The `fpm serve` subcommand: a long-lived mining server. Jobs are
// submitted over HTTP and mined one at a time; the telemetry endpoints
// (/metrics, /progress) follow whichever run is in flight, so a dashboard
// or `curl` loop can watch a long partitioned mine progress.
//
//	fpm serve -addr localhost:9090
//	curl -X POST -d '{"path":"tx.dat","algo":"lcm","min_support":100}' http://localhost:9090/jobs
//	curl http://localhost:9090/progress
//	curl http://localhost:9090/jobs/0
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"fpm"
	"fpm/internal/telemetry"
)

// runServe runs the job-serving mode until interrupted.
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fpm serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:9090", "HTTP listen address")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	srv := newServeServer()
	lnAddr, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "fpm: serving on http://%s (POST /jobs; GET /jobs, /metrics, /progress, /healthz, /debug/pprof)\n", lnAddr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return srv.Shutdown(context.Background())
}

// newServeServer wires the job store and the real mining function into a
// telemetry server; split from runServe so tests can drive the handler
// without a listener or signals.
func newServeServer() *telemetry.Server {
	srv := telemetry.NewServer()
	srv.AttachJobs(telemetry.NewStore(mineJob, srv.SetRecorder))
	return srv
}

// mineJob executes one submitted job through the library's observed
// mining paths, so the job's counters stream into rec while it runs.
func mineJob(req telemetry.JobRequest, rec *fpm.MetricsRecorder) (int, error) {
	if req.MinSupport < 1 {
		return 0, fmt.Errorf("job: min_support must be >= 1 (got %d)", req.MinSupport)
	}
	a := fpm.Algorithm(req.Algo)
	var ps fpm.PatternSet
	if req.Patterns == "" || req.Patterns == "all" {
		ps = fpm.Applicable(a)
	} else if req.Patterns != "none" {
		var err error
		if ps, err = parsePatterns(req.Patterns, a); err != nil {
			return 0, err
		}
	}
	opts := []fpm.ParallelOption{fpm.ParallelMetrics(rec)}
	if req.MemBudget > 0 {
		sets, _, err := fpm.MinePartitioned(req.Path, a, ps, req.MinSupport, req.MemBudget, req.Workers, opts...)
		return len(sets), err
	}
	db, err := fpm.ReadFIMIFile(req.Path)
	if err != nil {
		return 0, err
	}
	sets, _, err := fpm.WithMetrics(db, a, ps, req.MinSupport, req.Workers, opts...)
	return len(sets), err
}
