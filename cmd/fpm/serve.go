// The `fpm serve` subcommand: a long-lived mining server. Jobs are
// submitted over HTTP and mined one at a time; the telemetry endpoints
// (/metrics, /progress) follow whichever run is in flight, so a dashboard
// or `curl` loop can watch a long partitioned mine progress. Jobs may
// carry a per-job timeout and can be cancelled mid-run with DELETE. The
// pending queue is bounded: submissions beyond -queue-cap get HTTP 429.
//
//	fpm serve -addr localhost:9090 -queue-cap 64
//	curl -X POST -d '{"path":"tx.dat","algo":"lcm","min_support":100,"timeout_ms":60000}' http://localhost:9090/jobs
//	curl http://localhost:9090/progress
//	curl -X DELETE http://localhost:9090/jobs/0
//
// SIGINT/SIGTERM shut the server down gracefully: the job in flight is
// cancelled cooperatively, queued jobs are marked cancelled, in-flight
// HTTP responses drain, and the process exits 0.
//
// The wiring (real miner into the telemetry job store) lives in
// internal/serve so the load harness (cmd/fpmload) can host an identical
// server in-process.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpm/internal/serve"
	"fpm/internal/telemetry"
)

// runServe runs the job-serving mode until interrupted.
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fpm serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:9090", "HTTP listen address")
	queueCap := fs.Int("queue-cap", telemetry.DefaultQueueCap, "max pending jobs before POST /jobs returns 429")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	srv, store := serve.New(serve.Config{QueueCap: *queueCap})
	lnAddr, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "fpm: serving on http://%s (POST /jobs; GET /jobs, /metrics, /progress, /healthz, /debug/pprof; DELETE /jobs/{id})\n", lnAddr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	fmt.Fprintln(stderr, "fpm: shutting down: cancelling job in flight, draining connections")
	store.Shutdown() // cancels the running job and joins the runner
	ctx, cancelFn := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelFn()
	return srv.Shutdown(ctx)
}

// newServeServer wires the job store and the real mining function into a
// telemetry server; kept for the serve-API tests, which drive the handler
// without a listener or signals.
func newServeServer() (*telemetry.Server, *telemetry.Store) {
	return serve.New(serve.Config{})
}
