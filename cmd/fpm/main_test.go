package main

// Golden-file tests for the CLI: each case drives run() — the same code
// path main() uses — with in-memory writers and compares stdout against a
// checked-in fixture under testdata/golden. Regenerate with
//
//	go test ./cmd/fpm -run TestGolden -update
//
// Timing fields are nondeterministic and are normalized before comparison;
// every mining case uses -workers 1 because scheduler counters (steals,
// per-worker task counts) are scheduling-dependent by design.

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fpm"
	"fpm/internal/failpoint"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCLI invokes the CLI core and returns its stdout.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.String()
}

// checkGolden compares got with the named fixture, rewriting it under
// -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- want\n%s--- got\n%s", path, want, got)
	}
}

// timingLine matches table rows whose value is a wall-clock measurement.
var timingLine = regexp.MustCompile(`(?m)^(wall time|shard merge|pass 1 time|pass 2 time)(\s+)\S+$`)

func TestGoldenListing(t *testing.T) {
	out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"), "-support", "2", "-algo", "lcm")
	checkGolden(t, "listing.txt", out)
}

func TestGoldenCount(t *testing.T) {
	out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"), "-support", "2", "-algo", "eclat", "-count")
	checkGolden(t, "count.txt", out)
}

func TestGoldenDescribe(t *testing.T) {
	out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"), "-support", "2", "-describe")
	checkGolden(t, "describe.txt", out)
}

func TestGoldenStatsTable(t *testing.T) {
	for _, algo := range []string{"lcm", "eclat", "fpgrowth", "hmine"} {
		t.Run(algo, func(t *testing.T) {
			out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"),
				"-support", "2", "-algo", algo, "-stats", "table")
			out = timingLine.ReplaceAllString(out, "$1$2<timing>")
			checkGolden(t, "stats-table-"+algo+".txt", out)
		})
	}
}

// TestGoldenStatsJSON checks the machine-readable path end to end: the CLI
// JSON must decode into fpm.Snapshot (the acceptance round-trip through
// encoding/json), and — with timing zeroed — re-encode to the golden form.
func TestGoldenStatsJSON(t *testing.T) {
	out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"),
		"-support", "2", "-algo", "lcm", "-patterns", "all", "-stats", "json")

	var snap fpm.Snapshot
	if err := json.Unmarshal([]byte(out), &snap); err != nil {
		t.Fatalf("-stats json output does not decode into fpm.Snapshot: %v\n%s", err, out)
	}
	if snap.Kernel == "" || snap.Nodes == 0 || snap.Emitted == 0 {
		t.Fatalf("decoded snapshot is missing counters: %+v", snap)
	}
	if snap.WallNanos == 0 {
		t.Fatalf("decoded snapshot has zero wall time — timing was not recorded")
	}
	snap.WallNanos = 0

	canon, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "stats-json-lcm.json", string(canon)+"\n")
}

// TestGoldenStatsWithOut checks the split-destination contract: with -stats
// the listing goes to the -out file, counters to stdout.
func TestGoldenStatsWithOut(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "results.txt")
	out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"),
		"-support", "2", "-algo", "lcm", "-stats", "table", "-out", outFile)
	out = timingLine.ReplaceAllString(out, "$1$2<timing>")
	checkGolden(t, "stats-table-lcm.txt", out)

	listing, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	wantListing, err := os.ReadFile(filepath.Join("testdata", "golden", "listing.txt"))
	if err != nil && !*update {
		t.Fatal(err)
	}
	if !*update && string(listing) != string(wantListing) {
		t.Errorf("-out listing differs from plain listing:\n%s", listing)
	}
}

// TestGoldenPartitionListing pins the out-of-core acceptance property at
// the CLI layer: -partition with a budget that forces one-transaction
// chunks must produce the byte-identical listing to the in-memory run —
// the SAME golden file as TestGoldenListing, not a separate fixture.
func TestGoldenPartitionListing(t *testing.T) {
	for _, budget := range []string{"256", "1K", "64M"} {
		out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"),
			"-support", "2", "-algo", "lcm", "-partition", "-mem-budget", budget)
		checkGolden(t, "listing.txt", out)
	}
}

// TestGoldenPartitionStatsTable pins the two-pass counter table. Chunking
// is deterministic (streaming order × budget), so everything except the
// pass timings is stable: -mem-budget 1K (128-byte chunks) splits
// small.dat into three two-transaction chunks.
func TestGoldenPartitionStatsTable(t *testing.T) {
	out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"),
		"-support", "2", "-algo", "eclat", "-partition", "-mem-budget", "1K",
		"-workers", "1", "-stats", "table")
	out = timingLine.ReplaceAllString(out, "$1$2<timing>")
	checkGolden(t, "stats-table-partition.txt", out)
}

// TestGoldenPartitionStatsJSON checks the machine-readable two-pass
// snapshot end to end: decode into fpm.Snapshot, verify the partition
// section is live, zero the timings, and compare the re-encoding.
func TestGoldenPartitionStatsJSON(t *testing.T) {
	out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"),
		"-support", "2", "-algo", "lcm", "-partition", "-mem-budget", "1K",
		"-workers", "1", "-stats", "json")

	var snap fpm.Snapshot
	if err := json.Unmarshal([]byte(out), &snap); err != nil {
		t.Fatalf("-stats json output does not decode into fpm.Snapshot: %v\n%s", err, out)
	}
	if snap.Partition == nil {
		t.Fatalf("no partition section in snapshot: %s", out)
	}
	if snap.Partition.Chunks == 0 || snap.Partition.BytesPass2 == 0 {
		t.Fatalf("partition counters not recorded: %+v", *snap.Partition)
	}
	if snap.WallNanos == 0 || snap.Partition.Pass1Nanos == 0 || snap.Partition.Pass2Nanos == 0 {
		t.Fatalf("timings not recorded: wall=%d pass1=%d pass2=%d",
			snap.WallNanos, snap.Partition.Pass1Nanos, snap.Partition.Pass2Nanos)
	}
	snap.WallNanos = 0
	snap.Partition.Pass1Nanos = 0
	snap.Partition.Pass2Nanos = 0

	canon, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "stats-json-partition.json", string(canon)+"\n")
}

func TestCLIErrors(t *testing.T) {
	small := filepath.Join("testdata", "small.dat")
	cases := [][]string{
		{"-in", small, "-support", "2", "-stats", "xml"},
		{"-in", small, "-support", "2", "-kind", "closed", "-stats", "table"},
		{"-support", "2"}, // missing -in
		// Out-of-core constraints: -partition streams the file and cannot
		// serve paths that need the loaded database or a non-four-kernel algo.
		{"-in", small, "-support", "2", "-partition"}, // -algo auto default
		{"-in", small, "-support", "2", "-partition", "-algo", "hmine"},
		{"-in", small, "-support", "2", "-partition", "-algo", "lcm", "-kind", "closed"},
		{"-in", small, "-support", "2", "-partition", "-algo", "lcm", "-describe"},
		{"-in", small, "-support", "2", "-partition", "-algo", "lcm", "-mem-budget", "zzz"},
		{"-in", small, "-support", "2", "-partition", "-algo", "lcm", "-mem-budget", "-4K"},
		{"-in", small, "-support", "2", "-partition", "-algo", "lcm", "-mem-budget", "0"},
		// Checkpointing is an out-of-core feature: reject it without -partition.
		{"-in", small, "-support", "2", "-algo", "lcm", "-checkpoint", "x.fpmck"},
		{"-in", small, "-support", "2", "-algo", "lcm", "-resume"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestStatsParallelSmoke exercises -stats with workers > 1 (not golden:
// scheduler counters are nondeterministic) and checks the parallel section
// is present and self-consistent.
func TestStatsParallelSmoke(t *testing.T) {
	out := runCLI(t, "-in", filepath.Join("testdata", "small.dat"),
		"-support", "2", "-algo", "eclat", "-workers", "4", "-stats", "json")
	var snap fpm.Snapshot
	if err := json.Unmarshal([]byte(out), &snap); err != nil {
		t.Fatalf("decode: %v\n%s", err, out)
	}
	if snap.Workers != 4 {
		t.Fatalf("workers = %d, want 4", snap.Workers)
	}
	if snap.Parallel == nil {
		t.Fatalf("no parallel section: %s", out)
	}
	if snap.Parallel.TasksSpawned == 0 {
		t.Errorf("tasks spawned = 0, want > 0")
	}
	if len(snap.Parallel.Workers) != 4 {
		t.Errorf("worker stats = %d entries, want 4", len(snap.Parallel.Workers))
	}
	if !strings.Contains(snap.Kernel, "parallel(") {
		t.Errorf("kernel = %q, want parallel(...)", snap.Kernel)
	}
}

// heavyCorpusFile writes a corpus heavy enough that mining at support 2
// far outlives any test timeout used against it.
func heavyCorpusFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "heavy.dat")
	db := fpm.GenerateCorpus(fpm.CorpusConfig{
		Docs: 4000, Vocab: 1500, AvgLen: 20, ZipfS: 1.3,
		Topics: 6, TopicShare: 0.7, TopicPool: 40, Seed: 34,
	})
	if err := fpm.WriteFIMIFile(path, db); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCLITimeout: -timeout bounds the run's wall time and surfaces the
// deadline as the run error, for both the in-memory and partitioned paths.
func TestCLITimeout(t *testing.T) {
	heavy := heavyCorpusFile(t)
	for _, args := range [][]string{
		{"-in", heavy, "-support", "2", "-algo", "lcm", "-timeout", "50ms"},
		{"-in", heavy, "-support", "2", "-algo", "lcm", "-partition", "-mem-budget", "64M", "-timeout", "50ms"},
	} {
		var stdout, stderr bytes.Buffer
		err := run(args, &stdout, &stderr)
		if err == nil {
			t.Fatalf("run(%v) beat a 50ms deadline on a heavy corpus", args)
		}
		if !strings.Contains(err.Error(), "deadline") {
			t.Fatalf("run(%v) = %v, want deadline error", args, err)
		}
	}
}

// TestCLICheckpointResume: crash a partitioned CLI run via the chunk-mine
// failpoint, then -resume must finish it and print exactly what an
// uninterrupted run prints.
func TestCLICheckpointResume(t *testing.T) {
	defer failpoint.Disable()
	in := filepath.Join(t.TempDir(), "db.dat")
	db := fpm.GenerateQuest(fpm.QuestConfig{Transactions: 400, AvgLen: 5,
		AvgPatternLen: 3, Items: 60, Patterns: 25, Seed: 11})
	if err := fpm.WriteFIMIFile(in, db); err != nil {
		t.Fatal(err)
	}
	base := []string{"-in", in, "-support", "8", "-algo", "lcm", "-partition", "-mem-budget", "4K"}
	want := runCLI(t, base...)

	ckpt := in + ".fpmck"
	reg := failpoint.New()
	reg.FailAfter(failpoint.PartitionChunkMine, 1, errors.New("injected crash"))
	failpoint.Enable(reg)
	var stdout, stderr bytes.Buffer
	if err := run(append(base, "-checkpoint", ckpt), &stdout, &stderr); err == nil {
		t.Fatal("crashed run reported success")
	}
	failpoint.Disable()
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("crashed run left no sidecar: %v", err)
	}

	got := runCLI(t, append(base, "-resume")...) // sidecar defaults to <in>.fpmck
	if got != want {
		t.Fatal("resumed CLI output differs from uninterrupted run")
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("sidecar not removed after successful resume: %v", err)
	}
}
