// Command fpm mines frequent itemsets from a FIMI-format transaction file.
//
// Usage:
//
//	fpm -in transactions.dat -support 100 [-algo lcm|eclat|fpgrowth|apriori|auto]
//	    [-patterns lex,adapt,aggregate,compact,prefetchptr,tile,prefetch,simd|all]
//	    [-workers N] [-cutoff W] [-det] [-out results.txt] [-count]
//	    [-partition] [-mem-budget 64M] [-checkpoint file] [-resume] [-chunk-lex]
//	    [-timeout 30s] [-stats table|json] [-describe]
//
// With -algo auto the kernel and tuning patterns are selected from the
// input's measured characteristics (density, clustering, transaction
// count), implementing the paper's §6 transformation-selection problem.
//
// With -partition the input is never loaded whole: it is mined
// out-of-core with the SON two-pass algorithm, streaming the file in
// chunks sized to -mem-budget (bytes, with optional K/M/G suffix) and
// recounting candidate supports exactly on a second pass. The result is
// identical to the in-memory run; -partition requires an explicit
// four-kernel -algo (the autotuner and the alternative miners need the
// loaded database).
//
// With -checkpoint (or -resume, which defaults the sidecar to
// <in>.fpmck) a partitioned run persists its progress after every chunk
// with an atomic temp-file + rename, so a crashed or cancelled run loses
// at most the chunk in flight; -resume validates the sidecar against the
// input and configuration and skips every chunk the previous run
// completed, silently starting fresh on any mismatch. The sidecar is
// removed when the run completes.
//
// With -timeout the run is bounded in wall time: the kernels poll a
// cancellation flag at every recursion node (lcm, eclat, fpgrowth,
// hmine), the scheduler drops queued tasks, and partitioned runs stop at
// the next chunk boundary, exiting with a deadline error. Cancellation is
// cooperative — the apriori baseline and the tidset/diffset alternatives
// run to completion.
//
// With -stats the run's observability counters (nodes expanded, support
// countings, itemsets emitted, candidate prunes, and — with -workers != 1 —
// the work-stealing scheduler's task/steal/utilization counters) are
// printed to stdout as an aligned table or as JSON (the machine-readable
// metrics.Snapshot schema); the itemset listing is then suppressed unless
// -out redirects it to a file.
//
// With -trace the run's span timeline — one track per scheduler worker,
// kernel first-level subtrees on sequential runs, partition phases and
// chunks out-of-core, plus sampled counter series — is written as Chrome
// trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. With -telemetry-addr the run is additionally
// observable live over HTTP (/metrics Prometheus text, /progress JSON,
// /healthz, /debug/pprof) while it mines.
//
// The `fpm serve` subcommand runs a long-lived mining server: jobs are
// POSTed to /jobs and mined one at a time, with the same live telemetry
// endpoints following the run in flight (see -help of `fpm serve`).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"fpm"
	"fpm/internal/serve"
	"fpm/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == errUsage {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "fpm:", err)
		os.Exit(1)
	}
}

// errUsage signals a flag/usage failure (exit code 2); flag.FlagSet has
// already printed the diagnostics.
var errUsage = fmt.Errorf("usage")

// run executes one CLI invocation. It is the testable core of main: golden
// tests drive it with an argument vector and in-memory writers.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("fpm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "input transaction file (FIMI format); required")
		out      = fs.String("out", "", "output file (default stdout)")
		algo     = fs.String("algo", "auto", "mining kernel: lcm, eclat, fpgrowth, apriori, hmine, tidset, diffset or auto")
		support  = fs.Int("support", 0, "absolute minimum support; required")
		patterns = fs.String("patterns", "", "comma-separated tuning patterns, or \"all\" for every applicable pattern (ignored with -algo auto)")
		count    = fs.Bool("count", false, "print only the number of frequent itemsets")
		workers  = fs.Int("workers", 1, "work-stealing mining workers (1 = sequential; 0 = GOMAXPROCS)")
		cutoff   = fs.Int("cutoff", 0, "minimum estimated subtree weight to spawn a stealable task (0 = default)")
		det      = fs.Bool("det", false, "deterministic parallel merge order (sorted canonically)")
		kind     = fs.String("kind", "all", "result kind: all, closed or maximal")
		stats    = fs.String("stats", "", "print run-time mining counters to stdout: \"table\" or \"json\" (itemset listing suppressed unless -out is set)")
		describe = fs.Bool("describe", false, "print dataset statistics and the autotuner recommendation, then exit")
		part     = fs.Bool("partition", false, "mine out-of-core: stream the file in bounded chunks (SON two-pass) instead of loading it")
		budget   = fs.String("mem-budget", "64M", "out-of-core memory budget in bytes (K/M/G suffixes allowed); resident chunk + kernel working set stay within it")
		traceOut = fs.String("trace", "", "write the run's span timeline to this file as Chrome trace-event JSON (Perfetto/chrome://tracing loadable)")
		teleAddr = fs.String("telemetry-addr", "", "serve live run telemetry over HTTP on this address (/metrics, /progress, /healthz, /debug/pprof)")
		timeout  = fs.Duration("timeout", 0, "bound mining wall time; overrunning runs are cancelled cooperatively and exit with a deadline error")
		ckpt     = fs.String("checkpoint", "", "out-of-core: persist progress to this sidecar file after every chunk (crash-safe; removed on success)")
		resume   = fs.Bool("resume", false, "out-of-core: resume from the -checkpoint sidecar (default <in>.fpmck), skipping completed chunks")
		chunkLex = fs.Bool("chunk-lex", false, "out-of-core: reorder each pass-1 chunk by chunk-local frequency (pattern P1) before mining it")
	)
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if *in == "" || (*support < 1 && !*describe) {
		fs.Usage()
		return errUsage
	}
	if *stats != "" && *stats != "table" && *stats != "json" {
		return fmt.Errorf("invalid -stats %q: want \"table\" or \"json\"", *stats)
	}
	if (*ckpt != "" || *resume || *chunkLex) && !*part {
		return fmt.Errorf("-checkpoint/-resume/-chunk-lex require -partition")
	}

	var popts []fpm.ParallelOption
	var ctx context.Context
	if *timeout > 0 {
		var cancelRun context.CancelFunc
		ctx, cancelRun = context.WithTimeout(context.Background(), *timeout)
		defer cancelRun()
		popts = append(popts, fpm.WithContext(ctx))
	}
	if *cutoff != 0 {
		popts = append(popts, fpm.ParallelCutoff(*cutoff))
	}
	if *det {
		popts = append(popts, fpm.ParallelDeterministic())
	}

	// Any observability output (-stats, -trace, -telemetry-addr) routes
	// the run through the instrumented path with one shared recorder.
	observed := *stats != "" || *traceOut != "" || *teleAddr != ""
	var rec *fpm.MetricsRecorder
	if observed {
		rec = fpm.NewMetricsRecorder()
		popts = append(popts, fpm.ParallelMetrics(rec))
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		popts = append(popts, fpm.WithTrace(f))
	}
	if *teleAddr != "" {
		srv := telemetry.NewServer()
		srv.SetRecorder(rec)
		addr, err := srv.Start(*teleAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "fpm: telemetry listening on http://%s\n", addr)
		defer func() { _ = srv.Shutdown(context.Background()) }()
	}

	var (
		sets []fpm.Itemset
		snap fpm.Snapshot
	)
	if *part {
		// Out-of-core: the file is streamed, never loaded whole, so every
		// path that needs the in-memory database is unavailable.
		if *describe {
			return fmt.Errorf("-describe needs the loaded database; drop -partition")
		}
		if *kind != "all" {
			return fmt.Errorf("-partition supports -kind all only")
		}
		a := fpm.Algorithm(*algo)
		switch a {
		case fpm.LCM, fpm.Eclat, fpm.FPGrowth, fpm.Apriori:
		default:
			return fmt.Errorf("-partition requires an explicit -algo lcm|eclat|fpgrowth|apriori (got %q)", *algo)
		}
		memBytes, err := parseBytes(*budget)
		if err != nil {
			return fmt.Errorf("invalid -mem-budget %q: %w", *budget, err)
		}
		ps, err := parsePatterns(*patterns, a)
		if err != nil {
			return err
		}
		ckptPath := *ckpt
		if ckptPath == "" && *resume {
			ckptPath = *in + ".fpmck"
		}
		rc := fpm.PartitionRunConfig{Checkpoint: ckptPath, Resume: *resume, ChunkLex: *chunkLex}
		sets, _, err = fpm.MinePartitionedWithConfig(*in, a, ps, *support, memBytes, *workers, rc, popts...)
		return finish(sets, rec.Snapshot(), traceFile, err, *out, *stats, *count, stdout)
	}

	db, err := fpm.ReadFIMIFile(*in)
	if err != nil {
		return err
	}

	if *describe {
		s := fpm.ComputeStats(db)
		fmt.Fprintf(stdout, "transactions: %d\nitems: %d\navg length: %.2f\nmax length: %d\ndensity: %.5f\nclustering: %.3f\n",
			s.Transactions, s.Items, s.AvgLen, s.MaxLen, s.Density, s.Clustering)
		if *support >= 1 {
			rec := fpm.Recommend(db, *support)
			fmt.Fprintf(stdout, "recommendation: %s\n", rec)
			for _, line := range rec.Rationale {
				fmt.Fprintf(stdout, "  - %s\n", line)
			}
		}
		return nil
	}

	switch {
	case *kind == "closed" || *kind == "maximal":
		if observed {
			return fmt.Errorf("-stats/-trace/-telemetry-addr support -kind all only")
		}
		if *kind == "closed" {
			sets, err = fpm.MineClosed(db, *support)
		} else {
			sets, err = fpm.MineMaximal(db, *support)
		}
	case observed:
		a, ps := fpm.Algorithm(*algo), fpm.PatternSet(0)
		if *algo == "auto" {
			rec := fpm.Recommend(db, *support)
			a, ps = rec.Algorithm, rec.Patterns
			fmt.Fprintf(stderr, "fpm: auto-selected %s\n", rec)
		} else if a == "lcm" || a == "eclat" || a == "fpgrowth" || a == "apriori" {
			if ps, err = parsePatterns(*patterns, a); err != nil {
				return err
			}
		}
		sets, snap, err = fpm.WithMetrics(db, a, ps, *support, *workers, popts...)
	case *algo == "auto":
		var rec fpm.Recommendation
		sets, rec, err = fpm.MineAuto(db, *support)
		if err == nil {
			fmt.Fprintf(stderr, "fpm: auto-selected %s\n", rec)
		}
	case *algo == "hmine" || *algo == "tidset" || *algo == "diffset":
		var m fpm.Miner
		switch *algo {
		case "hmine":
			m = fpm.NewHMine()
		case "tidset":
			m = fpm.NewTidsetEclat()
		case "diffset":
			m = fpm.NewDiffsetEclat()
		}
		var sc fpm.SliceCollector
		if err = m.Mine(db, *support, &sc); err == nil {
			sets = sc.Sets
		}
	default:
		var ps fpm.PatternSet
		if ps, err = parsePatterns(*patterns, fpm.Algorithm(*algo)); err != nil {
			return err
		}
		if *workers != 1 {
			var m fpm.Miner
			m, err = fpm.NewParallel(*workers, fpm.Algorithm(*algo), ps, popts...)
			if err == nil {
				var sc fpm.SliceCollector
				if err = m.Mine(db, *support, &sc); err == nil {
					sets = sc.Sets
				}
			}
		} else if ctx != nil {
			sets, err = fpm.MineContext(ctx, db, fpm.Algorithm(*algo), ps, *support)
		} else {
			sets, err = fpm.Mine(db, fpm.Algorithm(*algo), ps, *support)
		}
	}
	return finish(sets, snap, traceFile, err, *out, *stats, *count, stdout)
}

// finish closes the trace sink and renders the results. A mining error
// suppresses output; a trace flush/close failure after a completed mine
// still prints the results, then surfaces the error once.
func finish(sets []fpm.Itemset, snap fpm.Snapshot, traceFile *os.File, err error, out, stats string, count bool, stdout io.Writer) error {
	mined := err == nil || sets != nil
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if !mined {
		return err
	}
	if werr := writeResults(sets, snap, out, stats, count, stdout); werr != nil && err == nil {
		err = werr
	}
	return err
}

// writeResults renders the mined itemsets and/or the stats snapshot,
// shared by the in-memory and out-of-core paths.
func writeResults(sets []fpm.Itemset, snap fpm.Snapshot, out, stats string, count bool, stdout io.Writer) error {
	if count {
		fmt.Fprintln(stdout, len(sets))
		return nil
	}

	// Result destination: stdout normally; with -stats the counters own
	// stdout and the listing only goes to an explicit -out file.
	resultW := io.Writer(nil)
	var flushers []*bufio.Writer
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		flushers = append(flushers, bw)
		resultW = bw
	} else if stats == "" {
		bw := bufio.NewWriter(stdout)
		flushers = append(flushers, bw)
		resultW = bw
	}

	if resultW != nil {
		// Deterministic output order: by size, then lexicographically.
		sort.Slice(sets, func(a, b int) bool {
			sa, sb := sets[a].Items, sets[b].Items
			if len(sa) != len(sb) {
				return len(sa) < len(sb)
			}
			for i := range sa {
				if sa[i] != sb[i] {
					return sa[i] < sb[i]
				}
			}
			return false
		})
		for _, s := range sets {
			for i, it := range s.Items {
				if i > 0 {
					fmt.Fprint(resultW, " ")
				}
				fmt.Fprintf(resultW, "%d", it)
			}
			fmt.Fprintf(resultW, " (%d)\n", s.Support)
		}
	}
	for _, bw := range flushers {
		if err := bw.Flush(); err != nil {
			return err
		}
	}

	switch stats {
	case "table":
		if err := snap.WriteTable(stdout); err != nil {
			return err
		}
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			return err
		}
	}
	return nil
}

// parseBytes parses a byte count with an optional K/M/G binary suffix
// ("512", "64K", "1.5M", "2G").
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k', 'K':
			mult, s = 1<<10, s[:n-1]
		case 'm', 'M':
			mult, s = 1<<20, s[:n-1]
		case 'g', 'G':
			mult, s = 1<<30, s[:n-1]
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("not a size: %q", s)
	}
	n := int64(v * float64(mult))
	if n <= 0 {
		return 0, fmt.Errorf("size must be positive")
	}
	return n, nil
}

// parsePatterns maps the -patterns flag to a PatternSet.
func parsePatterns(s string, algo fpm.Algorithm) (fpm.PatternSet, error) {
	return serve.ParsePatterns(s, algo)
}
