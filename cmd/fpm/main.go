// Command fpm mines frequent itemsets from a FIMI-format transaction file.
//
// Usage:
//
//	fpm -in transactions.dat -support 100 [-algo lcm|eclat|fpgrowth|apriori|auto]
//	    [-patterns lex,adapt,aggregate,compact,prefetchptr,tile,prefetch,simd|all]
//	    [-workers N] [-cutoff W] [-det] [-out results.txt] [-count]
//
// With -algo auto the kernel and tuning patterns are selected from the
// input's measured characteristics (density, clustering, transaction
// count), implementing the paper's §6 transformation-selection problem.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"fpm"
)

func main() {
	var (
		in       = flag.String("in", "", "input transaction file (FIMI format); required")
		out      = flag.String("out", "", "output file (default stdout)")
		algo     = flag.String("algo", "auto", "mining kernel: lcm, eclat, fpgrowth, apriori, hmine, tidset, diffset or auto")
		support  = flag.Int("support", 0, "absolute minimum support; required")
		patterns = flag.String("patterns", "", "comma-separated tuning patterns, or \"all\" for every applicable pattern (ignored with -algo auto)")
		count    = flag.Bool("count", false, "print only the number of frequent itemsets")
		workers  = flag.Int("workers", 1, "work-stealing mining workers (1 = sequential; 0 = GOMAXPROCS)")
		cutoff   = flag.Int("cutoff", 0, "minimum estimated subtree weight to spawn a stealable task (0 = default)")
		det      = flag.Bool("det", false, "deterministic parallel merge order (sorted canonically)")
		kind     = flag.String("kind", "all", "result kind: all, closed or maximal")
		stats    = flag.Bool("stats", false, "print dataset statistics and the autotuner recommendation, then exit")
	)
	flag.Parse()
	if *in == "" || (*support < 1 && !*stats) {
		flag.Usage()
		os.Exit(2)
	}

	db, err := fpm.ReadFIMIFile(*in)
	if err != nil {
		fatal(err)
	}

	if *stats {
		s := fpm.ComputeStats(db)
		fmt.Printf("transactions: %d\nitems: %d\navg length: %.2f\nmax length: %d\ndensity: %.5f\nclustering: %.3f\n",
			s.Transactions, s.Items, s.AvgLen, s.MaxLen, s.Density, s.Clustering)
		if *support >= 1 {
			rec := fpm.Recommend(db, *support)
			fmt.Printf("recommendation: %s\n", rec)
			for _, line := range rec.Rationale {
				fmt.Printf("  - %s\n", line)
			}
		}
		return
	}

	var sets []fpm.Itemset
	switch {
	case *kind == "closed":
		sets, err = fpm.MineClosed(db, *support)
	case *kind == "maximal":
		sets, err = fpm.MineMaximal(db, *support)
	case *algo == "auto":
		var rec fpm.Recommendation
		sets, rec, err = fpm.MineAuto(db, *support)
		if err == nil {
			fmt.Fprintf(os.Stderr, "fpm: auto-selected %s\n", rec)
		}
	case *algo == "hmine" || *algo == "tidset" || *algo == "diffset":
		var m fpm.Miner
		switch *algo {
		case "hmine":
			m = fpm.NewHMine()
		case "tidset":
			m = fpm.NewTidsetEclat()
		case "diffset":
			m = fpm.NewDiffsetEclat()
		}
		var sc fpm.SliceCollector
		err = m.Mine(db, *support, &sc)
		sets = sc.Sets
	default:
		ps, perr := parsePatterns(*patterns, fpm.Algorithm(*algo))
		if perr != nil {
			fatal(perr)
		}
		if *workers != 1 {
			popts := []fpm.ParallelOption{fpm.ParallelCutoff(*cutoff)}
			if *det {
				popts = append(popts, fpm.ParallelDeterministic())
			}
			var m fpm.Miner
			m, err = fpm.NewParallel(*workers, fpm.Algorithm(*algo), ps, popts...)
			if err == nil {
				var sc fpm.SliceCollector
				err = m.Mine(db, *support, &sc)
				sets = sc.Sets
			}
		} else {
			sets, err = fpm.Mine(db, fpm.Algorithm(*algo), ps, *support)
		}
	}
	if err != nil {
		fatal(err)
	}

	if *count {
		fmt.Println(len(sets))
		return
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	// Deterministic output order: by size, then lexicographically.
	sort.Slice(sets, func(a, b int) bool {
		sa, sb := sets[a].Items, sets[b].Items
		if len(sa) != len(sb) {
			return len(sa) < len(sb)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return sa[i] < sb[i]
			}
		}
		return false
	})
	for _, s := range sets {
		for i, it := range s.Items {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%d", it)
		}
		fmt.Fprintf(w, " (%d)\n", s.Support)
	}
}

// parsePatterns maps the -patterns flag to a PatternSet.
func parsePatterns(s string, algo fpm.Algorithm) (fpm.PatternSet, error) {
	if s == "" {
		return 0, nil
	}
	if s == "all" {
		return fpm.Applicable(algo), nil
	}
	names := map[string]fpm.Pattern{
		"lex": fpm.Lex, "adapt": fpm.Adapt, "aggregate": fpm.Aggregate,
		"compact": fpm.Compact, "prefetchptr": fpm.PrefetchPtr,
		"tile": fpm.Tile, "prefetch": fpm.Prefetch, "simd": fpm.SIMD,
	}
	var ps fpm.PatternSet
	for _, name := range strings.Split(s, ",") {
		p, ok := names[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return 0, fmt.Errorf("unknown pattern %q", name)
		}
		ps = ps.With(p)
	}
	return ps, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpm:", err)
	os.Exit(1)
}
