// Command fpmbench runs the out-of-core benchmark suite — the candidate
// trie and pass-2 recount benches of internal/partition, the streaming
// parse benches of internal/fimi, and the root package's partitioned
// vs. in-memory comparison with its peak-heap gauge — through `go test
// -bench`, and emits the results as machine-readable JSON so performance
// regressions show up as artifact diffs (the checked-in snapshot lives at
// BENCH_partition.json; EXPERIMENTS.md quotes it).
//
// Usage:
//
//	fpmbench [-out BENCH_partition.json] [-skip-root]
//
// -skip-root omits the root-package comparison (the slowest suite, ~30s),
// for quick iteration on the parse/trie benches alone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line, normalized. NsPerOp/BytesPerOp/AllocsPerOp
// are the standard testing metrics; Metrics carries every other unit the
// benchmark reported (e.g. MB/s, peakheapMiB).
type Result struct {
	Name        string             `json:"name"`
	Package     string             `json:"package"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the artifact schema.
type Report struct {
	Tool      string   `json:"tool"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Suites    []string `json:"suites"`
	Results   []Result `json:"results"`
}

type suite struct {
	pkg, pattern, benchtime string
}

func main() {
	var (
		out      = flag.String("out", "BENCH_partition.json", "output JSON path")
		skipRoot = flag.Bool("skip-root", false, "skip the root-package partitioned-vs-in-memory suite")
	)
	flag.Parse()

	suites := []suite{
		{"fpm/internal/partition", "BenchmarkTrieAdd|BenchmarkPass2Recount|BenchmarkSeal|BenchmarkMineChunkLex", "3x"},
		{"fpm/internal/fimi", "BenchmarkReadChunks|BenchmarkRead$", "10x"},
	}
	if !*skipRoot {
		suites = append(suites, suite{"fpm", "BenchmarkPartitionedVsInMemory", "1x"})
	}

	rep := Report{
		Tool:      "cmd/fpmbench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, s := range suites {
		rep.Suites = append(rep.Suites, s.pkg+" -bench "+s.pattern)
		fmt.Fprintf(os.Stderr, "fpmbench: %s (-benchtime %s)\n", s.pkg, s.benchtime)
		cmd := exec.Command("go", "test", "-run", "xxx", "-bench", s.pattern, "-benchtime", s.benchtime, s.pkg)
		raw, err := cmd.CombinedOutput()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpmbench: %s failed: %v\n%s", s.pkg, err, raw)
			os.Exit(1)
		}
		results, err := parseBench(string(raw), s.pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpmbench: parsing %s output: %v\n", s.pkg, err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, results...)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpmbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fpmbench:", err)
		os.Exit(1)
	}
	fmt.Printf("fpmbench: wrote %d results to %s\n", len(rep.Results), *out)
}

// parseBench extracts Benchmark lines from `go test -bench` output. Each
// line is: name, iteration count, then (value, unit) pairs. The GOMAXPROCS
// suffix (-8) is stripped from names so the artifact is stable across
// machines.
func parseBench(out, pkg string) ([]Result, error) {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", line)
		}
		r := Result{Name: name, Package: pkg, Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value in %q", line)
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
				if unit == "peakheapMiB" {
					r.Metrics["peak_heap_bytes"] = v * (1 << 20)
				}
			}
		}
		results = append(results, r)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", out)
	}
	return results, nil
}
