// Retail: the market-basket scenario frequent pattern mining was invented
// for (Agrawal et al., SIGMOD'93). Generates a Quest-style basket
// database, mines it with the fully tuned LCM kernel, compresses the
// result to closed and maximal sets, and derives the strongest
// association rules.
package main

import (
	"fmt"

	"fpm"
)

func main() {
	// A synthetic store: 20k baskets over 500 products with embedded
	// co-purchase patterns.
	db := fpm.GenerateQuest(fpm.QuestConfig{
		Transactions:  20_000,
		AvgLen:        12,
		AvgPatternLen: 4,
		Items:         500,
		Patterns:      80,
		Seed:          2024,
	})
	minSupport := 200 // 1% of baskets

	sets, err := fpm.Mine(db, fpm.LCM, fpm.Applicable(fpm.LCM), minSupport)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mined %d frequent itemsets from %d baskets (support >= %d)\n",
		len(sets), db.Len(), minSupport)

	// Closed and maximal views compress the result losslessly /
	// boundary-only.
	closed, err := fpm.MineClosed(db, minSupport)
	if err != nil {
		panic(err)
	}
	maximal, err := fpm.MineMaximal(db, minSupport)
	if err != nil {
		panic(err)
	}
	fmt.Printf("closed: %d sets (%.1f%% of frequent), maximal: %d sets\n",
		len(closed), 100*float64(len(closed))/float64(len(sets)), len(maximal))

	// Association rules from the complete collection.
	rules := fpm.GenerateRules(sets, db.Len(), fpm.RuleParams{
		MinConfidence: 0.6,
		MinLift:       1.5,
		MaxConsequent: 2,
	})
	fmt.Printf("\ntop association rules (confidence >= 0.6, lift > 1.5; %d total):\n", len(rules))
	for i, r := range rules {
		if i == 10 {
			break
		}
		fmt.Printf("  %v => %v  (support %d, confidence %.2f, lift %.1f, leverage %.4f)\n",
			r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift, r.Leverage)
	}
	if len(rules) == 0 {
		fmt.Println("  (none at these thresholds)")
	}
}
