// Webdocs: mine frequently co-occurring terms in a document corpus — the
// paper's DS3 (WebDocs) workload — comparing all four kernels on the same
// input and cross-checking that they produce identical results, then
// showing what each ALSO tuning lever does to the fastest kernel's
// wall-clock time.
package main

import (
	"fmt"
	"time"

	"fpm"
)

func main() {
	// A WebDocs-like corpus: dense clustered documents over a Zipf
	// vocabulary, mined at 10% relative support like the paper.
	db := fpm.GenerateCorpus(fpm.CorpusConfig{
		Docs: 8_000, Vocab: 5_000, AvgLen: 40, ZipfS: 1.25,
		Topics: 20, TopicShare: 0.6, TopicPool: 80,
		Seed: 7,
	})
	minSupport := db.Len() / 10
	s := fpm.ComputeStats(db)
	fmt.Printf("corpus: %d documents, %d terms, avg length %.1f, clustering %.2f, support %d\n\n",
		s.Transactions, s.Items, s.AvgLen, s.Clustering, minSupport)

	// Every kernel, baseline configuration: same answers, different time.
	var reference map[string]int
	for _, algo := range []fpm.Algorithm{fpm.LCM, fpm.Eclat, fpm.FPGrowth, fpm.Apriori} {
		start := time.Now()
		sets, err := fpm.Mine(db, algo, 0, minSupport)
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-9s %6d itemsets in %8s\n", algo, len(sets), elapsed.Round(time.Millisecond))

		got := map[string]int{}
		rs := fpm.ResultSet{}
		for _, is := range sets {
			rs.Collect(is.Items, is.Support)
		}
		for k, v := range rs {
			got[k] = v
		}
		if reference == nil {
			reference = got
		} else if len(got) != len(reference) {
			panic(fmt.Sprintf("%s disagrees: %d vs %d itemsets", algo, len(got), len(reference)))
		}
	}

	// The tuning levers on Eclat — the kernel the paper finds best on
	// WebDocs — measured natively (P1's 0-escaping and P8's computational
	// popcount are real Go-level effects).
	fmt.Println("\nEclat tuning levers (native wall clock):")
	levers := []struct {
		name string
		ps   fpm.PatternSet
	}{
		{"baseline", 0},
		{"Lex (0-escaping)", fpm.PatternSet(fpm.Lex)},
		{"SIMD (word-parallel popcount)", fpm.PatternSet(fpm.SIMD)},
		{"Lex+SIMD", fpm.PatternSet(fpm.Lex | fpm.SIMD)},
	}
	var base time.Duration
	for _, l := range levers {
		m, _ := fpm.NewMiner(fpm.Eclat, l.ps)
		var cc fpm.CountCollector
		start := time.Now()
		if err := m.Mine(db, minSupport, &cc); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		if l.ps == 0 {
			base = elapsed
		}
		fmt.Printf("  %-30s %8s  (speedup %.2fx, %d itemsets)\n",
			l.name, elapsed.Round(time.Millisecond),
			float64(base)/float64(elapsed), cc.N)
	}
}
