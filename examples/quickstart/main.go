// Quickstart: mine the running-example database of the paper (Table 1)
// and show the P1 lexicographic layout transformation.
package main

import (
	"fmt"

	"fpm"
)

func main() {
	// The paper's Table 1 database over items a..f (encoded 0..5):
	//   t0 {a,c,f}  t1 {b,c,f}  t2 {a,c,f}  t3 {d,e}  t4 {a,b,c,d,e,f}
	db := &fpm.DB{
		Tx: []fpm.Transaction{
			{0, 2, 5},
			{1, 2, 5},
			{0, 2, 5},
			{3, 4},
			{0, 1, 2, 3, 4, 5},
		},
		NumItems: 6,
	}
	names := []string{"a", "b", "c", "d", "e", "f"}

	// P1: lexicographic ordering. Items are relabeled in decreasing
	// frequency (the alphabet becomes c,f,a,b,d,e) and transactions are
	// sorted lexicographically — reproducing the right half of Table 1.
	lexed, ord := fpm.LexOrder(db)
	fmt.Println("lexicographic layout (paper Table 1):")
	for i, t := range lexed.Tx {
		fmt.Printf("  t%d {", i)
		for j, rank := range t {
			if j > 0 {
				fmt.Print(", ")
			}
			fmt.Print(names[ord.Orig[rank]])
		}
		fmt.Println("}")
	}

	// Mine frequent itemsets at support 3 with each kernel; all agree.
	for _, algo := range []fpm.Algorithm{fpm.LCM, fpm.Eclat, fpm.FPGrowth} {
		sets, err := fpm.Mine(db, algo, fpm.Applicable(algo), 3)
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n%s found %d frequent itemsets (support >= 3):\n", algo, len(sets))
		for _, s := range sets {
			fmt.Print("  {")
			for j, it := range s.Items {
				if j > 0 {
					fmt.Print(", ")
				}
				fmt.Print(names[it])
			}
			fmt.Printf("} x%d\n", s.Support)
		}
	}
}
