// Autotune: the paper's §6 future work in action. For each of the four
// Table 6 evaluation datasets and each simulated platform, print the
// transformation set the autotuner selects from the input statistics and
// machine parameters, with its rationale.
package main

import (
	"fmt"

	"fpm"
)

func main() {
	datasets := fpm.Table6Datasets(0.002, 42)
	machines := []fpm.MachineConfig{fpm.M1(), fpm.M2()}

	for _, ds := range datasets {
		fmt.Println(ds.Describe())
		for _, cfg := range machines {
			rec := fpm.RecommendFor(ds.DB, ds.Support, cfg)
			fmt.Printf("  %-28s -> %s\n", cfg.Name, rec)
			for _, line := range rec.Rationale {
				fmt.Printf("      %s\n", line)
			}
		}
		fmt.Println()
	}

	// Put one recommendation to work: mine DS1 with the recommended and
	// with the untuned configuration and compare.
	ds := datasets[0]
	rec := fpm.RecommendFor(ds.DB, ds.Support, fpm.M1())
	tuned, err := fpm.Mine(ds.DB, rec.Algorithm, rec.Patterns, ds.Support)
	if err != nil {
		panic(err)
	}
	baseline, err := fpm.Mine(ds.DB, rec.Algorithm, 0, ds.Support)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s on %s: %d frequent itemsets (tuned and baseline agree: %v)\n",
		rec.Algorithm, ds.Name, len(tuned), len(tuned) == len(baseline))
}
