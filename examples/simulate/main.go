// Simulate: drive the memory-hierarchy simulator directly through the
// public API — measure what each ALSO tuning pattern does to the LCM
// kernel's simulated cycles, misses and CPI on both modelled platforms.
// This is the per-pattern view behind the Figure 8 reproduction.
package main

import (
	"fmt"

	"fpm"
)

func main() {
	db := fpm.GenerateQuest(fpm.QuestConfig{
		Transactions: 2000, AvgLen: 25, AvgPatternLen: 6,
		Items: 400, Patterns: 80, Seed: 9,
	})
	minsup := 40

	levers := []struct {
		name string
		ps   fpm.PatternSet
	}{
		{"baseline", 0},
		{"Lex", fpm.PatternSet(fpm.Lex)},
		{"Reorg", fpm.PatternSet(fpm.Aggregate | fpm.Compact)},
		{"Pref", fpm.PatternSet(fpm.Prefetch)},
		{"Tile", fpm.PatternSet(fpm.Tile)},
		{"all", fpm.Applicable(fpm.LCM)},
	}

	for _, cfg := range []fpm.MachineConfig{fpm.M1(), fpm.M2()} {
		fmt.Printf("LCM on %s:\n", cfg.Name)
		var base float64
		for _, l := range levers {
			r, err := fpm.Simulate(fpm.LCM, db, minsup, l.ps, cfg)
			if err != nil {
				panic(err)
			}
			cycles := r.TotalCycles()
			if l.ps == 0 {
				base = cycles
			}
			calc := r.Phase("CalcFreq")
			fmt.Printf("  %-9s %12.0f cycles  speedup %4.2fx  CalcFreq CPI %5.2f  L1 miss %9d\n",
				l.name, cycles, base/cycles, calc.CPI(), calc.L1Miss)
		}
		fmt.Println()
	}
}
