package fpm_test

import (
	"fmt"
	"sort"
	"strings"

	"fpm"
)

// The paper's running example (Table 1): five transactions over items
// a..f, encoded as 0..5.
func paperDB() *fpm.DB {
	return &fpm.DB{
		Tx: []fpm.Transaction{
			{0, 2, 5},
			{1, 2, 5},
			{0, 2, 5},
			{3, 4},
			{0, 1, 2, 3, 4, 5},
		},
		NumItems: 6,
	}
}

func ExampleMine() {
	sets, err := fpm.Mine(paperDB(), fpm.Eclat, fpm.Applicable(fpm.Eclat), 3)
	if err != nil {
		panic(err)
	}
	lines := make([]string, 0, len(sets))
	for _, s := range sets {
		lines = append(lines, fmt.Sprintf("%v x%d", s.Items, s.Support))
	}
	sort.Strings(lines)
	fmt.Println(strings.Join(lines, "\n"))
	// Output:
	// [0 2 5] x3
	// [0 2] x3
	// [0 5] x3
	// [0] x3
	// [2 5] x4
	// [2] x4
	// [5] x4
}

func ExampleLexOrder() {
	lexed, ord := fpm.LexOrder(paperDB())
	// After reordering, the most frequent item (c, encoded 2) has rank 0
	// and all transactions containing it are contiguous — Table 1 of the
	// paper.
	fmt.Println("rank 0 is original item", ord.Orig[0])
	for _, t := range lexed.Tx {
		fmt.Println(t)
	}
	// Output:
	// rank 0 is original item 2
	// [0 1 2]
	// [0 1 2]
	// [0 1 2 3 4 5]
	// [0 1 3]
	// [4 5]
}

func ExampleMineClosed() {
	// At support 3 the frequent sets are {a},{c},{f},{ac},{af},{cf},{acf};
	// only {cf} (support 4) and {acf} (support 3) are closed.
	closed, err := fpm.MineClosed(paperDB(), 3)
	if err != nil {
		panic(err)
	}
	lines := make([]string, 0, len(closed))
	for _, s := range closed {
		lines = append(lines, fmt.Sprintf("%v x%d", s.Items, s.Support))
	}
	sort.Strings(lines)
	fmt.Println(strings.Join(lines, "\n"))
	// Output:
	// [0 2 5] x3
	// [2 5] x4
}

func ExampleGenerateRules() {
	db := &fpm.DB{
		Tx: []fpm.Transaction{
			{0, 1}, {0, 1}, {0, 1}, {0, 2}, {1},
		},
		NumItems: 3,
	}
	sets, err := fpm.Mine(db, fpm.LCM, 0, 3)
	if err != nil {
		panic(err)
	}
	rules := fpm.GenerateRules(sets, db.Len(), fpm.RuleParams{MinConfidence: 0.75})
	for _, r := range rules {
		fmt.Printf("%v => %v (confidence %.2f)\n", r.Antecedent, r.Consequent, r.Confidence)
	}
	// Output:
	// [1] => [0] (confidence 0.75)
	// [0] => [1] (confidence 0.75)
}

func ExampleRecommend() {
	// A dense correlated basket workload: the autotuner picks the
	// vertical bit-matrix kernel with SIMDized counting.
	db := fpm.GenerateQuest(fpm.QuestConfig{
		Transactions: 1000, AvgLen: 20, AvgPatternLen: 5,
		Items: 100, Patterns: 30, Seed: 1,
	})
	rec := fpm.Recommend(db, 100)
	fmt.Println(rec)
	// Output:
	// eclat with SIMD
}

func ExampleSimulate() {
	db := fpm.GenerateQuest(fpm.QuestConfig{
		Transactions: 500, AvgLen: 12, AvgPatternLen: 4,
		Items: 80, Patterns: 20, Seed: 2,
	})
	base, err := fpm.Simulate(fpm.Eclat, db, 25, 0, fpm.M1())
	if err != nil {
		panic(err)
	}
	simd, err := fpm.Simulate(fpm.Eclat, db, 25, fpm.PatternSet(fpm.SIMD), fpm.M1())
	if err != nil {
		panic(err)
	}
	fmt.Printf("SIMD helps on the Pentium D model: %v\n",
		simd.TotalCycles() < base.TotalCycles())
	// Output:
	// SIMD helps on the Pentium D model: true
}
