package fpm

// End-to-end integration tests: generator → FIMI file → reader → every
// miner (all kernels × all applicable pattern sets, plus closed/maximal
// views and the alternative representations) on the same pipeline, with
// all outputs cross-checked.

import (
	"path/filepath"
	"testing"

	"fpm/internal/memsim"
	"fpm/internal/simkern"
)

func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate a realistic workload.
	db := GenerateQuest(QuestConfig{
		Transactions: 800, AvgLen: 14, AvgPatternLen: 5,
		Items: 120, Patterns: 40, Seed: 77,
	})
	minsup := 30

	// 2. Round-trip through the on-disk FIMI format.
	path := filepath.Join(t.TempDir(), "pipeline.dat")
	if err := WriteFIMIFile(path, db); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFIMIFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("round trip lost transactions: %d vs %d", loaded.Len(), db.Len())
	}

	// 3. Mine with every kernel × {baseline, all applicable patterns} and
	// the alternative vertical representations. All must agree exactly.
	var want ResultSet
	check := func(name string, m Miner) {
		t.Helper()
		rs := ResultSet{}
		if err := m.Mine(loaded, minsup, rs); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want == nil {
			want = rs
			if len(want) == 0 {
				t.Fatal("degenerate pipeline workload")
			}
			return
		}
		if !rs.Equal(want) {
			t.Fatalf("%s disagrees with the reference:\n%s", name, rs.Diff(want, 8))
		}
	}
	for _, algo := range []Algorithm{LCM, Eclat, FPGrowth, Apriori} {
		for _, ps := range []PatternSet{0, Applicable(algo)} {
			m, err := NewMiner(algo, ps)
			if err != nil {
				t.Fatal(err)
			}
			check(m.Name(), m)
		}
	}
	check("tidset", NewTidsetEclat())
	check("diffset", NewDiffsetEclat())
	check("cache-conscious fpgrowth", NewCacheConsciousFPGrowth(0))

	// 4. Closed/maximal views are consistent subsets.
	cl, err := MineClosed(loaded, minsup)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cl {
		rs := ResultSet{}
		rs.Collect(s.Items, s.Support)
		for k, v := range rs {
			if want[k] != v {
				t.Fatalf("closed set %s=%d not in the frequent collection", k, v)
			}
		}
	}

	// 5. Rules derived from the full collection are consistent with the
	// autotuned mining path.
	sets, rec, err := MineAuto(loaded, minsup)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != len(want) {
		t.Fatalf("MineAuto (%s) mined %d sets, reference has %d", rec, len(sets), len(want))
	}
	rules := GenerateRules(sets, loaded.Len(), RuleParams{MinConfidence: 0.7})
	for _, r := range rules {
		u := append(append([]Item(nil), r.Antecedent...), r.Consequent...)
		rs := ResultSet{}
		rs.Collect(u, r.Support)
		for k, v := range rs {
			if want[k] != v {
				t.Fatalf("rule support inconsistent for %s: %d vs %d", k, v, want[k])
			}
		}
	}

	// 6. The same database drives the simulator without error on both
	// machines, and tuned configurations never lose cycles to the
	// baseline by more than the preprocessing cost bound.
	for _, cfg := range []memsim.Config{memsim.M1(), memsim.M2()} {
		base := simkern.LCM(loaded, minsup, 0, cfg, simkern.LCMOptions{MaxColumns: 24}).TotalCycles()
		tuned := simkern.LCM(loaded, minsup, PatternSet(Aggregate|Compact|Tile|Prefetch), cfg, simkern.LCMOptions{MaxColumns: 24}).TotalCycles()
		if tuned <= 0 || base <= 0 {
			t.Fatalf("%s: zero cycles", cfg.Name)
		}
		if tuned > base*1.05 {
			t.Fatalf("%s: tuned LCM slower than baseline: %.0f vs %.0f", cfg.Name, tuned, base)
		}
	}
}

func TestEndToEndAutotuneAcrossTable6(t *testing.T) {
	// Every Table 6 dataset must flow through the autotuner and the
	// recommended miner without error, and the recommended configuration
	// must reproduce the baseline's result set.
	for _, ds := range Table6Datasets(0.0008, 3) {
		rec := RecommendFor(ds.DB, ds.Support*4, M1())
		tuned, err := Mine(ds.DB, rec.Algorithm, rec.Patterns, ds.Support*4)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		base, err := Mine(ds.DB, rec.Algorithm, 0, ds.Support*4)
		if err != nil {
			t.Fatal(err)
		}
		if len(tuned) != len(base) {
			t.Fatalf("%s: tuned %d sets vs baseline %d", ds.Name, len(tuned), len(base))
		}
	}
}
